// Package core wires the reproduction together into the paper's
// Figure 1 pipeline: data collection over the listing site,
// keyword-based traceability analysis of the collected privacy
// policies, static code analysis of the linked repositories, and
// dynamic honeypot analysis of the most-voted bots — all running
// against in-process but socket-real services.
//
// The Auditor owns the full infrastructure (listing server, code host,
// messaging platform + gateway, canary trigger service) so a single
// call sequence reproduces the paper end to end:
//
//	a, _ := core.NewAuditor(core.Options{Seed: 1, NumBots: 2000})
//	defer a.Close()
//	res, _ := a.RunAll()
//	res.Report(os.Stdout)
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/canary"
	"repro/internal/codeanalysis"
	"repro/internal/codehost"
	"repro/internal/corpus"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/honeypot"
	"repro/internal/listing"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/ops"
	"repro/internal/checkpoint"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/retry"
	"repro/internal/scraper"
	"repro/internal/synth"
	"repro/internal/traceability"
	"repro/internal/vetting"
)

// Options configures an Auditor.
type Options struct {
	// Seed drives every generator; equal seeds give equal ecosystems.
	Seed int64
	// NumBots is the listing population (default: the paper's 20,915).
	NumBots int
	// Ecosystem overrides generation with a prebuilt population.
	Ecosystem *synth.Ecosystem

	// AntiScrape configures the listing site's defences; zero value
	// disables them for fast runs.
	AntiScrape listing.AntiScrape
	// ScrapeTimeout bounds each scraper fetch (default 500ms — shorter
	// than the slow-redirect delay, as the paper's timeouts were).
	ScrapeTimeout time.Duration
	// ScrapeWorkers is the crawl parallelism (default 8).
	ScrapeWorkers int
	// Solver answers captchas for both the scraper and the honeypot
	// installer; defaults to a TwoCaptchaSim.
	Solver scraper.Solver

	// HoneypotSample is how many most-voted bots the dynamic analysis
	// tests (default: the paper's 500, capped at the population).
	HoneypotSample int
	// HoneypotConcurrency bounds simultaneous guild experiments.
	HoneypotConcurrency int
	// HoneypotSettle is the per-bot trigger-watch window.
	HoneypotSettle time.Duration

	// Obs receives every stage's counters, histograms, and pipeline
	// traces; nil uses the process-default registry. Its text exposition
	// is also mounted at /metrics on the listing server.
	Obs *obs.Registry
	// Journal receives one correlated event per pipeline milestone (page
	// fetched, bot discovered, policy audited, experiment settled, canary
	// triggered, permission denied, ...). Nil disables the journal; every
	// emission site is nil-safe.
	Journal *journal.Journal

	// Faults, when set, is installed as middleware on the listing server
	// and code host and as the gateway's event-fault policy, so the whole
	// pipeline runs against a deterministically misbehaving substrate.
	Faults *faults.Injector
	// Strict restores fail-fast semantics: the first stage-level or
	// per-bot failure aborts the pipeline instead of quarantining the
	// bot and continuing with partial results.
	Strict bool

	// Checkpoint, when set, makes RunAllContext crash-safe: progress
	// snapshots are written atomically at stage boundaries and every
	// Checkpoint.Every settled bots, and Checkpoint.Resume replays a
	// prior snapshot's settled work instead of re-executing it.
	Checkpoint *CheckpointConfig
	// Breakers, when set, wraps the scraper, code-host, and gateway
	// transports in per-endpoint-class circuit breakers: persistently
	// failing endpoints short-circuit (and quarantine their bots fast)
	// instead of burning full retry schedules. Nil disables breakers.
	Breakers *retry.BreakerSet
	// StageSoftDeadline, when positive, arms a watchdog over each
	// pipeline stage: a stage running past the deadline gets a
	// stage_stalled journal event carrying a full goroutine dump, then
	// its context is cancelled with ErrStageStalled as the cause.
	StageSoftDeadline time.Duration
	// StageRetryBudget, when positive, gives each network stage
	// (collect, codeanalysis) its own shared retry budget of that many
	// retries, surfaced as the trace table's "Budget left" column and
	// persisted across checkpoint/resume. Zero keeps the historical
	// per-fetch pools.
	StageRetryBudget int
}

// Auditor owns the simulated ecosystem and its services.
type Auditor struct {
	opts    Options
	eco     *synth.Ecosystem
	obs     *obs.Registry
	journal *journal.Journal
	faults  *faults.Injector

	listingSrv *listing.Server
	hostSrv    *codehost.Server
	plat       *platform.Platform
	gw         *gateway.Server
	canarySvc  *canary.Service

	listClient *scraper.Client
	codeClient *scraper.Client
}

// QuarantinedBot is one entry in the run's unified quarantine ledger:
// a bot (or bot-owned link) whose stage work failed on infrastructure
// errors and was set aside so the rest of the run could complete.
type QuarantinedBot struct {
	Stage string // "collect", "codeanalysis", or "honeypot"
	BotID int
	Name  string // honeypot only
	Link  string // codeanalysis only
	Err   error
}

// Results bundles every stage's output.
type Results struct {
	// Stage 1: data collection.
	Records  []*scraper.Record
	PermDist []scraper.PermissionShare
	Scraper  scraper.Stats

	// Stage 2: traceability.
	Table2 report.Table2Data
	// DataTypes is the ontology-based refinement: per-data-type
	// exposure vs. disclosure.
	DataTypes *traceability.DataTypeResult

	// Stage 3: code analysis.
	Code     *codeanalysis.Result
	Analyses []*codeanalysis.RepoAnalysis

	// Stage 4: dynamic analysis.
	Honeypot *honeypot.CampaignResult

	// Mitigation: listing-time vetting verdicts (§7 recommendation).
	Vetting        []*vetting.Report
	VettingSummary vetting.Summary

	// Developer attribution (Table 1).
	BotsPerDeveloper map[string]int

	// Trace is the pipeline's stage-span tree; Report renders it as a
	// per-stage timing table.
	Trace *obs.Trace

	// RunID is the correlation identifier stamped on every journal event
	// this run emitted (empty when no journal is configured — the ID is
	// minted regardless so reports can cite it).
	RunID string

	// Degraded reports whether any stage absorbed an error or
	// quarantined a bot; the fields below itemize the damage so partial
	// results are honest about what they omit.
	Degraded bool
	// StageErrors records stage-level errors absorbed in lenient mode
	// (e.g. a listing page that never came back), keyed by stage name.
	StageErrors map[string]error
	// Quarantined is the unified per-bot quarantine ledger across all
	// stages.
	Quarantined []QuarantinedBot
	// Degradation carries per-stage retry/quarantine/error tallies,
	// rendered as extra columns of the stage-timings table.
	Degradation map[string]report.StageDegradation
	// FaultLog is the injector's canonical fault ledger for this run
	// (nil when no injector is configured).
	FaultLog []faults.Fault
}

// NewAuditor generates the ecosystem and starts all services.
func NewAuditor(opts Options) (*Auditor, error) {
	if opts.ScrapeTimeout <= 0 {
		opts.ScrapeTimeout = 500 * time.Millisecond
	}
	if opts.ScrapeWorkers <= 0 {
		opts.ScrapeWorkers = 8
	}
	if opts.Solver == nil {
		opts.Solver = &scraper.TwoCaptchaSim{CostPerSolve: 299}
	}
	if opts.HoneypotSample <= 0 {
		opts.HoneypotSample = 500
	}
	if opts.HoneypotConcurrency <= 0 {
		opts.HoneypotConcurrency = 8
	}
	if opts.HoneypotSettle <= 0 {
		opts.HoneypotSettle = 500 * time.Millisecond
	}

	eco := opts.Ecosystem
	if eco == nil {
		eco = synth.Generate(synth.Config{Seed: opts.Seed, NumBots: opts.NumBots})
	}
	a := &Auditor{opts: opts, eco: eco, obs: obs.Or(opts.Obs), journal: opts.Journal, faults: opts.Faults}

	var err error
	if a.listingSrv, err = listing.NewServer(listing.NewDirectory(eco.Bots), opts.AntiScrape, "127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("core: listing server: %w", err)
	}
	// Full operational surface on the listing server: /metrics plus
	// /healthz, /readyz, and /debug/pprof/*.
	ops.Mount(a.listingSrv, a.obs, nil)
	if a.hostSrv, err = codehost.NewServer(eco.Host, "127.0.0.1:0"); err != nil {
		a.Close()
		return nil, fmt.Errorf("core: code host: %w", err)
	}
	a.plat = platform.New(platform.Options{Obs: a.obs, Journal: opts.Journal})
	if a.gw, err = gateway.NewServer(a.plat, "127.0.0.1:0"); err != nil {
		a.Close()
		return nil, fmt.Errorf("core: gateway: %w", err)
	}
	a.gw.SetObs(a.obs)
	a.gw.SetJournal(opts.Journal)
	if a.canarySvc, err = canary.NewService("127.0.0.1:0", nil); err != nil {
		a.Close()
		return nil, fmt.Errorf("core: canary service: %w", err)
	}
	a.canarySvc.SetObs(a.obs)
	a.canarySvc.SetJournal(opts.Journal)
	if a.listClient, err = scraper.NewClient(scraper.ClientConfig{
		BaseURL:  a.listingSrv.BaseURL(),
		Timeout:  opts.ScrapeTimeout,
		Solver:   opts.Solver,
		Obs:      a.obs,
		Breakers: opts.Breakers,
	}); err != nil {
		a.Close()
		return nil, err
	}
	// The code host imposes no defences; give it a generous timeout.
	if a.codeClient, err = scraper.NewClient(scraper.ClientConfig{
		BaseURL:  a.hostSrv.BaseURL(),
		Timeout:  5 * time.Second,
		Solver:   opts.Solver,
		Obs:      a.obs,
		Breakers: opts.Breakers,
	}); err != nil {
		a.Close()
		return nil, err
	}
	if a.faults != nil {
		// Chaos harness: the same seeded injector misbehaves on the
		// listing site, the code host, and the gateway event stream.
		a.listingSrv.SetMiddleware(a.faults.Middleware)
		a.hostSrv.SetMiddleware(a.faults.Middleware)
		a.gw.SetFaultPolicy(a.faults)
	}
	return a, nil
}

// Faults returns the configured fault injector (nil when the run is
// fault-free).
func (a *Auditor) Faults() *faults.Injector { return a.faults }

// Obs returns the auditor's observability registry.
func (a *Auditor) Obs() *obs.Registry { return a.obs }

// Journal returns the configured event journal (nil when disabled).
func (a *Auditor) Journal() *journal.Journal { return a.journal }

// MetricsURL returns the Prometheus-style text exposition endpoint
// mounted on the listing server.
func (a *Auditor) MetricsURL() string { return a.listingSrv.BaseURL() + "/metrics" }

// Ecosystem exposes the generated ground truth (for validation and
// examples).
func (a *Auditor) Ecosystem() *synth.Ecosystem { return a.eco }

// CanaryTriggers returns every trigger the canary service recorded.
func (a *Auditor) CanaryTriggers() []canary.Trigger { return a.canarySvc.Triggers() }

// ListingURL returns the listing site base URL.
func (a *Auditor) ListingURL() string { return a.listingSrv.BaseURL() }

// Close tears down every service.
func (a *Auditor) Close() {
	if a.listingSrv != nil {
		a.listingSrv.Close()
	}
	if a.hostSrv != nil {
		a.hostSrv.Close()
	}
	if a.gw != nil {
		a.gw.Close()
	}
	if a.canarySvc != nil {
		a.canarySvc.Close()
	}
	if a.plat != nil {
		a.plat.Close()
	}
}

// Collect runs stage 1: crawl the listing and decode permissions.
func (a *Auditor) Collect() ([]*scraper.Record, error) {
	return a.CollectContext(context.Background())
}

// CollectContext is Collect with cancellation.
func (a *Auditor) CollectContext(ctx context.Context) ([]*scraper.Record, error) {
	records, err := scraper.CrawlContext(ctx, a.listClient, scraper.Config{Workers: a.opts.ScrapeWorkers})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("core: collect: %w", err)
	}
	return records, nil
}

// Traceability runs stage 2 over collected records: the Table 2
// counts plus the ontology-based per-data-type refinement.
func (a *Auditor) Traceability(records []*scraper.Record) (report.Table2Data, *traceability.DataTypeResult) {
	return a.TraceabilityContext(context.Background(), records)
}

// TraceabilityContext is Traceability with a context carrying the run's
// journal correlation: every audited policy becomes a policy_audited
// event recording the bot and its disclosure verdict.
func (a *Auditor) TraceabilityContext(ctx context.Context, records []*scraper.Record) (report.Table2Data, *traceability.DataTypeResult) {
	var d report.Table2Data
	var an traceability.Analyzer
	dt := traceability.NewDataTypeResult()
	for _, r := range records {
		if r == nil || !r.PermsValid {
			continue
		}
		d.ActiveBots++
		if r.HasWebsite {
			d.WebsiteLink++
		}
		if r.PolicyLinkFound {
			d.PolicyLink++
			if !r.PolicyLinkDead {
				d.PolicyValid++
			}
		}
		v := an.AnalyzePolicy(r.PolicyText, r.Perms)
		d.Traceability.Add(v)
		dt.Add(r.PolicyText, r.Perms)
		journal.Emit(journal.WithBot(ctx, r.ID, r.Name), "core", journal.KindPolicyAudited, map[string]any{
			"verdict":           v.Class.String(),
			"has_policy":        v.HasPolicy,
			"covered":           len(v.Covered),
			"undisclosed_perms": len(v.UndisclosedPerms),
		})
	}
	return d, dt
}

// CodeAnalysis runs stage 3 over collected records.
func (a *Auditor) CodeAnalysis(records []*scraper.Record) (*codeanalysis.Result, []*codeanalysis.RepoAnalysis, error) {
	return a.CodeAnalysisContext(context.Background(), records)
}

// CodeAnalysisContext is CodeAnalysis with cancellation.
func (a *Auditor) CodeAnalysisContext(ctx context.Context, records []*scraper.Record) (*codeanalysis.Result, []*codeanalysis.RepoAnalysis, error) {
	return codeanalysis.AnalyzeContext(ctx, a.codeClient, records, a.opts.ScrapeWorkers)
}

// DynamicAnalysis runs stage 4: the honeypot campaign over the
// most-voted sample.
func (a *Auditor) DynamicAnalysis() (*honeypot.CampaignResult, error) {
	return a.DynamicAnalysisContext(context.Background())
}

// DynamicAnalysisContext is DynamicAnalysis with cancellation.
func (a *Auditor) DynamicAnalysisContext(ctx context.Context) (*honeypot.CampaignResult, error) {
	return a.dynamicAnalysis(ctx, nil, nil)
}

// dynamicAnalysis runs the campaign with optional checkpoint hooks: a
// resume state replaying settled experiments and a settle observer
// feeding the checkpointer.
func (a *Auditor) dynamicAnalysis(ctx context.Context, resume *honeypot.CampaignResume, onSettled func(int, *honeypot.Verdict, error)) (*honeypot.CampaignResult, error) {
	env := honeypot.Env{
		Platform: a.plat,
		Gateway:  a.gw.Addr(),
		Canary:   a.canarySvc,
		Minter:   a.canarySvc.NewMinter("canary.invalid", nil),
		Feed:     corpus.New(a.opts.Seed ^ 0xfeed),
		Obs:      a.obs,
		Breakers: a.opts.Breakers,
	}
	expCfg := honeypot.DefaultConfig()
	expCfg.Settle = a.opts.HoneypotSettle
	expCfg.Solver = a.opts.Solver
	return honeypot.CampaignContext(ctx, env, a.eco, honeypot.CampaignConfig{
		SampleSize:  a.opts.HoneypotSample,
		Concurrency: a.opts.HoneypotConcurrency,
		Experiment:  expCfg,
		Strict:      a.opts.Strict,
		Resume:      resume,
		OnSettled:   onSettled,
	})
}

// RunAll executes the full Figure 1 pipeline.
func (a *Auditor) RunAll() (*Results, error) {
	return a.RunAllContext(context.Background())
}

// RunAllContext is RunAll with cancellation: cancelling ctx aborts the
// pipeline at its next wait point and returns the context's error. The
// run is recorded as a "pipeline" trace with one span per stage, and —
// when a journal is configured — as a stream of correlated events
// sharing one run ID, bracketed by stage_started/stage_completed pairs.
func (a *Auditor) RunAllContext(ctx context.Context) (*Results, error) {
	trace := a.obs.StartTrace("pipeline")
	runID := fmt.Sprintf("run-%d", time.Now().UnixNano())

	// Checkpointing: load the resume snapshot (keeping its run ID so
	// the journal reads as one logical run), or start a fresh one.
	var ck *ckptState
	var resumed *checkpoint.Snapshot
	var scrapeRes *scraper.ResumeState
	var codeRes *codeanalysis.AnalyzeResume
	var hpRes *honeypot.CampaignResume
	if cc := a.opts.Checkpoint; cc != nil {
		if cc.Store == nil {
			return nil, fmt.Errorf("core: checkpoint config requires a store")
		}
		base := &checkpoint.Snapshot{
			RunID:          runID,
			Seed:           a.opts.Seed,
			NumBots:        a.opts.NumBots,
			HoneypotSample: a.opts.HoneypotSample,
		}
		if cc.Resume != "" {
			snap, err := loadResume(cc, a.opts)
			if err != nil {
				return nil, err
			}
			resumed = snap
			runID = snap.RunID
			base = snap
			// The resumed run re-finalizes; Completed is re-stamped by
			// the final snapshot.
			base.Completed = false
			scrapeRes = scraperResume(snap)
			codeRes = codeResume(snap)
			hpRes = honeypotResume(snap)
		}
		ck = newCkptState(cc, base, a.obs)
	}

	res := &Results{
		Trace:       trace,
		RunID:       runID,
		StageErrors: make(map[string]error),
		Degradation: make(map[string]report.StageDegradation),
	}
	ctx = journal.WithRunID(journal.NewContext(ctx, a.journal), runID)
	if ck != nil {
		ck.ctx = ctx
	}
	if resumed != nil {
		journal.Emit(ctx, "core", journal.KindRunResumed, map[string]any{
			"settled":     resumed.Settled(),
			"records":     len(resumed.Records),
			"code_links":  len(resumed.CodeLinks),
			"verdicts":    len(resumed.Verdicts),
			"quarantined": len(resumed.CollectQuarantine) + len(resumed.HoneypotQuarantine),
		})
	}

	// Per-stage retry budgets, restored to their checkpointed
	// remainders on resume so a resumed run cannot out-retry an
	// uninterrupted one.
	var collectBudget, codeBudget *retry.Budget
	if a.opts.StageRetryBudget > 0 {
		nCollect, nCode := a.opts.StageRetryBudget, a.opts.StageRetryBudget
		if resumed != nil {
			if left, ok := resumed.BudgetLeft["collect"]; ok {
				nCollect = left
			}
			if left, ok := resumed.BudgetLeft["codeanalysis"]; ok {
				nCode = left
			}
		}
		collectBudget = retry.NewBudget(nCollect)
		codeBudget = retry.NewBudget(nCode)
		a.listClient.SetRetryBudget(collectBudget)
		a.codeClient.SetRetryBudget(codeBudget)
		ck.trackBudget("collect", collectBudget)
		ck.trackBudget("codeanalysis", codeBudget)
	}

	stage := func(name string) (context.Context, func()) {
		sp := trace.StartSpan(name)
		sctx := obs.ContextWithSpan(ctx, sp)
		stopWatchdog := func() {}
		if a.opts.StageSoftDeadline > 0 {
			var cancel context.CancelCauseFunc
			sctx, cancel = context.WithCancelCause(sctx)
			stopWatchdog = watchdog(sctx, name, a.opts.StageSoftDeadline, cancel)
		}
		journal.Emit(sctx, "core", journal.KindStageStarted, map[string]any{"stage": name})
		return sctx, func() {
			stopWatchdog()
			sp.End()
			journal.Emit(sctx, "core", journal.KindStageCompleted, map[string]any{
				"stage":   name,
				"seconds": sp.Duration().Seconds(),
			})
		}
	}
	// stageFail translates a stage error: watchdog stalls surface as
	// ErrStageStalled, outer cancellation as the context's error.
	stageFail := func(sctx context.Context, name string, err error) error {
		if cause := context.Cause(sctx); cause != nil && errors.Is(cause, ErrStageStalled) {
			return cause
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("core: %s: %w", name, err)
	}
	cDegraded := a.obs.Counter("core_stages_degraded_total")
	// note records a stage's degradation tallies; a stage with absorbed
	// errors or quarantines marks the whole run degraded and emits one
	// stage_degraded event so the journal tells the story end to end.
	note := func(sctx context.Context, name string, d report.StageDegradation) {
		res.Degradation[name] = d
		if d.Quarantined == 0 && d.Errors == 0 {
			return
		}
		res.Degraded = true
		cDegraded.Inc()
		journal.Emit(sctx, "core", journal.KindStageDegraded, map[string]any{
			"stage":       name,
			"quarantined": d.Quarantined,
			"errors":      d.Errors,
			"retries":     d.Retries,
		})
	}
	retriesOf := func(c *scraper.Client) int {
		s := c.Stats()
		return s.Retries + s.TransientRetries
	}

	collectCtx, endCollect := stage("collect")
	listRetries := retriesOf(a.listClient)
	crawl, err := scraper.CrawlResultContext(collectCtx, a.listClient, scraper.Config{
		Workers:   a.opts.ScrapeWorkers,
		Strict:    a.opts.Strict,
		Resume:    scrapeRes,
		OnSettled: ck.noteCollect,
		OnListed:  ck.noteListed,
	})
	endCollect()
	if err != nil {
		return nil, stageFail(collectCtx, "collect", err)
	}
	ck.boundary("collect")
	res.Records = crawl.Records
	d := report.StageDegradation{
		Retries:     retriesOf(a.listClient) - listRetries,
		Quarantined: len(crawl.Quarantined),
		BudgetLeft:  collectBudget.Remaining(),
	}
	if crawl.ListErr != nil {
		res.StageErrors["collect"] = crawl.ListErr
		d.Errors++
	}
	for _, q := range crawl.Quarantined {
		res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "collect", BotID: q.BotID, Err: q.Err})
	}
	note(collectCtx, "collect", d)
	res.PermDist = scraper.PermissionDistribution(res.Records)
	res.Scraper = a.listClient.Stats()

	traceCtx, endTrace := stage("traceability")
	res.Table2, res.DataTypes = a.TraceabilityContext(traceCtx, res.Records)
	endTrace()

	codeCtx, endCode := stage("codeanalysis")
	codeRetries := retriesOf(a.codeClient)
	res.Code, res.Analyses, err = codeanalysis.AnalyzeOptionsContext(codeCtx, a.codeClient, res.Records, codeanalysis.AnalyzeOptions{
		Workers: a.opts.ScrapeWorkers,
		Resume:  codeRes,
		OnLink:  ck.noteLink,
	})
	endCode()
	if err != nil {
		return nil, stageFail(codeCtx, "codeanalysis", err)
	}
	ck.boundary("codeanalysis")
	d = report.StageDegradation{
		Retries:     retriesOf(a.codeClient) - codeRetries,
		Quarantined: len(res.Code.Quarantined),
		BudgetLeft:  codeBudget.Remaining(),
	}
	for _, q := range res.Code.Quarantined {
		res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "codeanalysis", BotID: q.BotID, Link: q.Link, Err: q.Err})
	}
	note(codeCtx, "codeanalysis", d)

	hpCtx, endHoneypot := stage("honeypot")
	res.Honeypot, err = a.dynamicAnalysis(hpCtx, hpRes, ck.noteVerdict)
	endHoneypot()
	if err != nil {
		return nil, stageFail(hpCtx, "honeypot", err)
	}
	ck.boundary("honeypot")
	d = report.StageDegradation{Quarantined: len(res.Honeypot.Quarantined), BudgetLeft: -1}
	for _, q := range res.Honeypot.Quarantined {
		res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "honeypot", BotID: q.BotID, Name: q.Name, Err: q.Err})
	}
	note(hpCtx, "honeypot", d)

	_, endVet := stage("vetting")
	res.Vetting, res.VettingSummary = vetting.VetAll(res.Records)
	endVet()

	res.BotsPerDeveloper = make(map[string]int)
	for dev, ids := range a.eco.Developers {
		res.BotsPerDeveloper[dev] = len(ids)
	}
	if a.faults != nil {
		res.FaultLog = a.faults.Log()
	}
	ck.finish()
	return res, nil
}

// Report renders every table and figure to w.
func (r *Results) Report(w io.Writer) {
	report.ScrapeYield(w, r.Records)
	fmt.Fprintln(w)
	report.Figure3(w, r.PermDist)
	fmt.Fprintln(w)
	report.Table1(w, r.BotsPerDeveloper)
	fmt.Fprintln(w)
	report.Table2(w, r.Table2)
	fmt.Fprintln(w)
	if r.DataTypes != nil {
		report.DataTypes(w, r.DataTypes)
		fmt.Fprintln(w)
	}
	if r.Code != nil {
		report.CodeTaxonomy(w, r.Code)
		fmt.Fprintln(w)
		report.Table3(w, r.Code)
		fmt.Fprintln(w)
	}
	if r.Honeypot != nil {
		report.Honeypot(w, r.Honeypot)
	}
	if r.VettingSummary.Total > 0 {
		fmt.Fprintln(w)
		report.Vetting(w, r.VettingSummary)
	}
	fmt.Fprintf(w, "\nScraper stats: %d requests, %d throttled, %d captchas solved, %d timeouts, %d retries, %d transient retries\n",
		r.Scraper.Requests, r.Scraper.Throttled, r.Scraper.CaptchasSolved, r.Scraper.Timeouts, r.Scraper.Retries, r.Scraper.TransientRetries)
	if r.Trace != nil {
		fmt.Fprintln(w)
		report.StageTimingsDegraded(w, r.Trace, r.Degradation)
	}
	if len(r.FaultLog) > 0 {
		byKind := make(map[string]int)
		for _, f := range r.FaultLog {
			byKind[string(f.Kind)]++
		}
		kinds := make([]string, 0, len(byKind))
		for k := range byKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "\nFault injection: %d fault(s) injected:", len(r.FaultLog))
		for _, k := range kinds {
			fmt.Fprintf(w, " %s=%d", k, byKind[k])
		}
		fmt.Fprintln(w)
	}
	if r.Degraded {
		fmt.Fprintf(w, "\nDegraded run: %d stage error(s) absorbed, %d bot(s) quarantined\n",
			len(r.StageErrors), len(r.Quarantined))
		stages := make([]string, 0, len(r.StageErrors))
		for s := range r.StageErrors {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			fmt.Fprintf(w, "  stage %-14s %v\n", s+":", r.StageErrors[s])
		}
		for _, q := range r.Quarantined {
			id := fmt.Sprintf("bot %d", q.BotID)
			if q.Name != "" {
				id += " (" + q.Name + ")"
			}
			if q.Link != "" {
				id += " link " + q.Link
			}
			fmt.Fprintf(w, "  quarantined [%s] %s: %v\n", q.Stage, id, q.Err)
		}
	}
}
