// The sharded work-stealing executor: bots are partitioned across N
// shards and each worker carries one bot through
// collect → traceability → code analysis → honeypot before taking the
// next, stealing from loaded shards once its own drains. Per-stage
// concurrency is bounded by counting gates, so the listing server,
// code host, and gateway each see tunable pressure regardless of how
// many workers are in flight.
//
// Determinism: every per-bot outcome is computed by the same
// stage-package primitives the sequential executor uses (Crawler,
// Analyzer, CampaignRunner), per-experiment RNG feeds are derived from
// stable identities, aggregates are commutative, and final assembly
// walks canonical (listing/sample) order — so a fault-free sharded run
// is byte-equivalent to a sequential run on the same seed.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/codeanalysis"
	"repro/internal/core/sched"
	"repro/internal/honeypot"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	bottrace "repro/internal/obs/trace"
	"repro/internal/report"
	"repro/internal/scraper"
	"repro/internal/traceability"
)

// ScaleStats is the sharded executor's scheduler and throughput
// accounting — the payload of BENCH_SCALE.json.
type ScaleStats struct {
	Bots    int   `json:"bots"`   // listed bots (collect items)
	Sample  int   `json:"sample"` // honeypot sample size
	Items   int   `json:"items"`  // scheduled work items (listing ∪ sample)
	Seed    int64 `json:"seed"`
	Shards  int   `json:"shards"`
	Workers int   `json:"workers"`

	ElapsedMS  float64 `json:"elapsed_ms"`
	BotsPerSec float64 `json:"bots_per_sec"`

	Steals           int64   `json:"steals"`
	ExecutedPerShard []int64 `json:"executed_per_shard"`
	StolenPerShard   []int64 `json:"stolen_per_shard"`
	PerWorker        []int64 `json:"executed_per_worker"`
	// ShardImbalance is max/mean executed items per shard; 1.0 is a
	// perfectly balanced drain.
	ShardImbalance float64 `json:"shard_imbalance"`

	// Stages carries per-stage gate throughput (items/sec, busy time,
	// peak in-flight) for collect, traceability, codeanalysis, honeypot.
	Stages []sched.GateStats `json:"stages"`
}

// Report renders the scale accounting as text.
func (s *ScaleStats) Report(w io.Writer) {
	fmt.Fprintf(w, "Sharded executor: %d items (%d listed, sample %d) on %d shard(s) × %d worker(s) in %.0fms (%.1f bots/sec, %d steal(s), imbalance %.2f)\n",
		s.Items, s.Bots, s.Sample, s.Shards, s.Workers, s.ElapsedMS, s.BotsPerSec, s.Steals, s.ShardImbalance)
	for _, g := range s.Stages {
		fmt.Fprintf(w, "  stage %-14s limit %-3d items %-6d %8.1f items/sec  busy %.0fms  peak in-flight %d\n",
			g.Stage, g.Limit, g.Items, g.ItemsPerSec, g.BusyMS, g.MaxInflight)
	}
}

// workItem is one bot's trip through the pipeline: listIdx indexes the
// listing (-1 for a sampled bot the partial listing missed), sampleIdx
// indexes the honeypot sample (-1 for unsampled bots).
type workItem struct {
	botID     int
	listIdx   int
	sampleIdx int
}

// shardStage is one pipeline stage's shared envelope under the sharded
// executor: its (concurrent) trace span, its watchdog-armed context,
// and its concurrency gate.
type shardStage struct {
	name   string
	span   *obs.Span
	ctx    context.Context
	gate   *sched.Gate
	stop   func()
	endRun func() // closes the stage's run-level trace span
}

func shardImbalance(executed []int64) float64 {
	if len(executed) == 0 {
		return 0
	}
	var sum, max int64
	for _, n := range executed {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(executed))
	return float64(max) / mean
}

// runSharded executes the four analysis stages as one pipelined phase
// over the work-stealing scheduler.
func (a *Auditor) runSharded(r *run) error {
	res := r.res
	shards := a.opts.Exec.Shards
	sw := a.opts.Exec.StageWorkers
	if sw.Collect <= 0 {
		sw.Collect = shards
	}
	if sw.Code <= 0 {
		sw.Code = shards
	}
	if sw.Honeypot <= 0 {
		sw.Honeypot = shards
	}
	workers := shards

	pctx, cancel := context.WithCancelCause(r.ctx)
	defer cancel(nil)

	// All four stage envelopes open for the whole phase: the stages
	// interleave over one wall-clock window, which is why their spans
	// are marked concurrent and their soft deadlines each cover the
	// full window.
	mkStage := func(name string, limit int) *shardStage {
		sp := r.trace.StartSpan(name)
		sp.MarkConcurrent()
		sctx := obs.ContextWithSpan(pctx, sp)
		sctx = bottrace.ContextWithStage(sctx, r.tracer, name)
		stop := func() {}
		if dl := a.opts.Exec.StageSoftDeadline; dl > 0 {
			stop = watchdog(sctx, name, dl, cancel)
		}
		journal.Emit(sctx, "core", journal.KindStageStarted, map[string]any{
			"stage": name, "concurrent": true,
		})
		return &shardStage{
			name: name, span: sp, ctx: sctx, gate: sched.NewGate(name, limit),
			stop: stop, endRun: r.tracer.StartRunSpan(name),
		}
	}
	stCollect := mkStage("collect", sw.Collect)
	stTrace := mkStage("traceability", workers)
	stCode := mkStage("codeanalysis", sw.Code)
	stHp := mkStage("honeypot", sw.Honeypot)
	stages := []*shardStage{stCollect, stTrace, stCode, stHp}
	var cleanupOnce sync.Once
	cleanup := func() {
		cleanupOnce.Do(func() {
			for _, st := range stages {
				st.stop()
				st.endRun()
				st.span.End()
				gs := st.gate.Stats()
				journal.Emit(st.ctx, "core", journal.KindStageCompleted, map[string]any{
					"stage":      st.name,
					"concurrent": true,
					"seconds":    st.span.Duration().Seconds(),
					"items":      gs.Items,
				})
			}
		})
	}
	defer cleanup()

	// failWith translates a fatal error exactly as the sequential
	// executor's stageFail does: watchdog stalls surface as
	// ErrStageStalled, cancellation as the context's error.
	failWith := func(stage string, err error) error {
		cleanup()
		if cause := context.Cause(pctx); cause != nil && errors.Is(cause, ErrStageStalled) {
			return cause
		}
		if ctxErr := r.ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return fmt.Errorf("core: %s: %w", stage, err)
	}

	listRetries := retriesOf(a.listClient)
	codeRetries := retriesOf(a.codeClient)
	phaseStart := time.Now()

	// Listing discovery stays serial — it is one paginated walk — and
	// runs under the collect stage's envelope.
	crawler := scraper.NewCrawler(a.listClient, scraper.Config{
		Strict:   a.opts.Exec.Strict,
		Resume:   r.scrapeRes,
		OnListed: r.ck.noteListed,
	})
	ids, listErr, err := crawler.List(stCollect.ctx)
	if err != nil {
		return failWith("collect", err)
	}

	az := codeanalysis.NewAnalyzer(a.codeClient, codeanalysis.AnalyzeOptions{
		Resume: r.codeRes,
		OnLink: r.ck.noteLink,
	})

	camp := honeypot.NewCampaignRunner(a.honeypotEnv(), a.eco, a.campaignConfig(r.hpRes, nil))
	if err := camp.ApplyResume(stHp.ctx); err != nil {
		return failWith("honeypot", err)
	}

	// The work plan: one item per listed bot, plus one per sampled bot
	// the (possibly partial) listing missed, so a truncated pagination
	// never silently drops honeypot experiments the sequential path
	// would have run.
	items := make([]workItem, 0, len(ids))
	byBot := make(map[int]int, len(ids))
	for i, id := range ids {
		byBot[id] = len(items)
		items = append(items, workItem{botID: id, listIdx: i, sampleIdx: -1})
	}
	for si, b := range camp.Sample() {
		if idx, ok := byBot[b.ID]; ok {
			items[idx].sampleIdx = si
		} else {
			items = append(items, workItem{botID: b.ID, listIdx: -1, sampleIdx: si})
		}
	}

	// Index-addressed slots: workers write their own item's slot only,
	// and assembly below reads them in canonical order.
	records := make([]*scraper.Record, len(ids))
	collectQ := make([]error, len(ids))
	codeRA := make([]*codeanalysis.RepoAnalysis, len(ids))
	codeQ := make([]error, len(ids))

	// Traceability aggregates are shared (they are tiny commutative
	// counters), guarded by one mutex.
	var traceMu sync.Mutex
	var an traceability.Analyzer
	var t2 report.Table2Data
	dt := traceability.NewDataTypeResult()

	// Per-worker checkpoint batches: outcomes buffer locally and fold
	// into the snapshot in batches, so workers do not serialize on
	// checkpoint state per settled bot.
	const batchEvery = 8
	batches := make([][]pendingOutcome, workers)
	addOutcome := func(w int, p pendingOutcome) {
		if r.ck == nil {
			return
		}
		batches[w] = append(batches[w], p)
		if len(batches[w]) >= batchEvery {
			r.ck.noteBatch(batches[w])
			batches[w] = batches[w][:0]
		}
	}

	var errMu sync.Mutex
	var firstErr error
	var firstStage string
	fatal := func(stage string, err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr, firstStage = err, stage
		}
		errMu.Unlock()
		cancel(err)
	}

	fn := func(wctx context.Context, w, idx int) {
		it := items[idx]
		var rec *scraper.Record
		if it.listIdx >= 0 {
			release, err := stCollect.gate.Acquire(wctx)
			if err != nil {
				return
			}
			out, err := crawler.Settle(bottrace.WithWorker(stCollect.ctx, w), it.botID)
			release()
			if err != nil {
				fatal("collect", err)
				return
			}
			records[it.listIdx], collectQ[it.listIdx] = out.Rec, out.Quarantine
			if !out.Resumed && (out.Rec != nil || out.Quarantine != nil) {
				addOutcome(w, pendingOutcome{Stage: "collect", BotID: it.botID, Rec: out.Rec, Qerr: out.Quarantine})
			}
			rec = out.Rec
		}
		if rec != nil && rec.PermsValid {
			release, err := stTrace.gate.Acquire(wctx)
			if err != nil {
				return
			}
			traceMu.Lock()
			auditOne(bottrace.WithWorker(stTrace.ctx, w), &an, &t2, dt, rec)
			traceMu.Unlock()
			release()
			if rec.GitHubURL != "" {
				release, err := stCode.gate.Acquire(wctx)
				if err != nil {
					return
				}
				sl, serr := az.SettleBot(bottrace.WithWorker(stCode.ctx, w), rec.ID, rec.GitHubURL)
				release()
				if serr != nil {
					fatal("codeanalysis", serr)
					return
				}
				codeRA[it.listIdx], codeQ[it.listIdx] = sl.RA, sl.Quarantine
			}
		}
		if it.sampleIdx >= 0 && !camp.Settled(it.sampleIdx) {
			release, err := stHp.gate.Acquire(wctx)
			if err != nil {
				return
			}
			v, qerr, rerr := camp.RunBot(bottrace.WithWorker(stHp.ctx, w), it.sampleIdx)
			release()
			if rerr != nil {
				fatal("honeypot", rerr)
				return
			}
			if v != nil || qerr != nil {
				addOutcome(w, pendingOutcome{Stage: "honeypot", BotID: it.botID, V: v, Qerr: qerr})
			}
		}
	}

	stats := sched.RunHooked(pctx, sched.Partition(len(items), shards), workers, fn,
		sched.Hooks{Obs: a.obs, Tracer: r.tracer, Stage: "sharded"})
	elapsed := time.Since(phaseStart)

	// Drain the worker buffers before deciding anything: even a failed
	// run checkpoints the outcomes it settled.
	for w := range batches {
		r.ck.noteBatch(batches[w])
		batches[w] = nil
	}
	cleanup()
	if a.journal != nil {
		evs := make([]journal.Event, 0, len(stats.Executed))
		for si := range stats.Executed {
			evs = append(evs, journal.Event{
				Kind:      journal.KindShardDrained,
				Component: "core",
				RunID:     res.RunID,
				Fields: map[string]any{
					"shard":    si,
					"executed": stats.Executed[si],
					"stolen":   stats.Stolen[si],
				},
			})
		}
		a.journal.EmitBatch(evs)
	}

	if cause := context.Cause(pctx); cause != nil && errors.Is(cause, ErrStageStalled) {
		return cause
	}
	if ctxErr := r.ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	if firstErr != nil {
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			return firstErr
		}
		return fmt.Errorf("core: %s: %w", firstStage, firstErr)
	}
	r.ck.boundary("pipeline")

	// ---- canonical-order assembly ----

	// Collect: records and the quarantine ledger in listing order,
	// exactly as CrawlResultContext assembles them.
	for i := range ids {
		switch {
		case records[i] != nil:
			res.Records = append(res.Records, records[i])
		case collectQ[i] != nil:
			res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "collect", BotID: ids[i], Err: collectQ[i]})
		}
	}
	collectQuarantined := len(res.Quarantined)
	d := report.StageDegradation{
		Retries:     retriesOf(a.listClient) - listRetries,
		Quarantined: collectQuarantined,
		BudgetLeft:  r.collectBudget.Remaining(),
	}
	if listErr != nil {
		res.StageErrors["collect"] = listErr
		d.Errors++
	}
	r.note(stCollect.ctx, "collect", d)
	res.PermDist = scraper.PermissionDistribution(res.Records)
	res.Scraper = a.listClient.Stats()

	// Traceability: the aggregates are commutative, so accumulation
	// order never mattered; hand them over as-is.
	res.Table2, res.DataTypes = t2, dt

	// Code analysis: fold per-bot slots in listing order through the
	// same NoteBot/Add path the batch assembly uses.
	cres := codeanalysis.NewResult()
	analyses := make([]*codeanalysis.RepoAnalysis, 0, len(ids))
	for i := range ids {
		rec := records[i]
		if rec == nil || !rec.PermsValid {
			continue
		}
		cres.NoteBot(rec.GitHubURL != "")
		if rec.GitHubURL == "" {
			continue
		}
		switch {
		case codeRA[i] != nil:
			analyses = append(analyses, codeRA[i])
			cres.Add(codeRA[i])
		case codeQ[i] != nil:
			cres.Quarantined = append(cres.Quarantined, codeanalysis.QuarantinedLink{
				BotID: rec.ID, Link: rec.GitHubURL, Err: codeQ[i],
			})
		}
	}
	res.Code, res.Analyses = cres, analyses
	d = report.StageDegradation{
		Retries:     retriesOf(a.codeClient) - codeRetries,
		Quarantined: len(cres.Quarantined),
		BudgetLeft:  r.codeBudget.Remaining(),
	}
	for _, q := range cres.Quarantined {
		res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "codeanalysis", BotID: q.BotID, Link: q.Link, Err: q.Err})
	}
	r.note(stCode.ctx, "codeanalysis", d)

	// Honeypot: the runner assembles its result in sample order.
	res.Honeypot = camp.Result()
	d = report.StageDegradation{Quarantined: len(res.Honeypot.Quarantined), BudgetLeft: -1}
	for _, q := range res.Honeypot.Quarantined {
		res.Quarantined = append(res.Quarantined, QuarantinedBot{Stage: "honeypot", BotID: q.BotID, Name: q.Name, Err: q.Err})
	}
	r.note(stHp.ctx, "honeypot", d)

	botsPerSec := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		botsPerSec = float64(len(items)) / secs
	}
	res.Scale = &ScaleStats{
		Bots:             len(ids),
		Sample:           len(camp.Sample()),
		Items:            len(items),
		Seed:             a.opts.Seed,
		Shards:           shards,
		Workers:          stats.Workers,
		ElapsedMS:        float64(elapsed) / float64(time.Millisecond),
		BotsPerSec:       botsPerSec,
		Steals:           stats.Steals,
		ExecutedPerShard: stats.Executed,
		StolenPerShard:   stats.Stolen,
		PerWorker:        stats.PerWorker,
		ShardImbalance:   shardImbalance(stats.Executed),
		Stages: []sched.GateStats{
			stCollect.gate.Stats(), stTrace.gate.Stats(), stCode.gate.Stats(), stHp.gate.Stats(),
		},
	}
	return nil
}
