package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/listing"
	"repro/internal/permissions"
	"repro/internal/vetting"
)

// newSmallAuditor builds a fast, fully-featured auditor over a small
// population.
func newSmallAuditor(t *testing.T, n int) *Auditor {
	t.Helper()
	a, err := NewAuditor(Options{
		Seed:                11,
		NumBots:             n,
		HoneypotSample:      20,
		HoneypotConcurrency: 8,
		HoneypotSettle:      400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func TestEndToEndPipeline(t *testing.T) {
	a := newSmallAuditor(t, 150)
	res, err := a.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 150 {
		t.Fatalf("collected %d records", len(res.Records))
	}
	// Stage outputs are populated and mutually consistent.
	if len(res.PermDist) == 0 {
		t.Error("no permission distribution")
	}
	if res.Table2.ActiveBots == 0 || res.Table2.ActiveBots > 150 {
		t.Errorf("active bots = %d", res.Table2.ActiveBots)
	}
	if res.Table2.Traceability.Total != res.Table2.ActiveBots {
		t.Errorf("traceability total %d != active %d", res.Table2.Traceability.Total, res.Table2.ActiveBots)
	}
	if res.Table2.Traceability.Complete != 0 {
		t.Errorf("complete policies = %d, paper found none", res.Table2.Traceability.Complete)
	}
	if res.Code == nil || res.Code.ActiveBots != res.Table2.ActiveBots {
		t.Errorf("code analysis active = %v", res.Code)
	}
	if res.Honeypot == nil || res.Honeypot.Tested != 20 {
		t.Fatalf("honeypot tested = %+v", res.Honeypot)
	}
	// The single planted malicious bot is caught, and only it.
	if len(res.Honeypot.Triggered) != 1 || res.Honeypot.Triggered[0].Subject.Name != "Melonian" {
		t.Errorf("triggered = %+v", res.Honeypot.Triggered)
	}
	if len(res.BotsPerDeveloper) == 0 {
		t.Error("developer attribution missing")
	}
	// Extensions: data-type audit and vetting run as part of RunAll.
	if res.DataTypes == nil || res.DataTypes.Bots != res.Table2.ActiveBots {
		t.Errorf("data-type audit = %+v", res.DataTypes)
	}
	if res.VettingSummary.Total != len(res.Records) {
		t.Errorf("vetting covered %d of %d bots", res.VettingSummary.Total, len(res.Records))
	}
	if res.VettingSummary.Rejected == 0 {
		t.Error("a 55%-admin ecosystem should see vetting rejections")
	}
}

func TestReportRendersAllSections(t *testing.T) {
	a := newSmallAuditor(t, 120)
	res, err := a.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	for _, want := range []string{
		"Scrape yield:",
		"Figure 3:",
		"Table 1:",
		"Table 2:",
		"Table 3:",
		"GitHub link taxonomy",
		"Honeypot campaign:",
		"Melonian",
		"Data-type audit",
		"Vetting (listing-time mitigation)",
		"send messages",
		"administrator",
		"Scraper stats:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestStagesRunIndividually(t *testing.T) {
	a := newSmallAuditor(t, 80)
	records, err := a.Collect()
	if err != nil {
		t.Fatal(err)
	}
	d := a.Traceability(records)
	if d.ActiveBots == 0 {
		t.Error("traceability saw no active bots")
	}
	code, analyses, err := a.CodeAnalysis(records)
	if err != nil {
		t.Fatal(err)
	}
	if code.WithLink != len(analyses) {
		t.Errorf("analyses %d != links %d", len(analyses), code.WithLink)
	}
}

func TestAuditorWithDefences(t *testing.T) {
	a, err := NewAuditor(Options{
		Seed:    13,
		NumBots: 60,
		AntiScrape: listing.AntiScrape{
			CaptchaEvery:      25,
			FlakyEvery:        3,
			RequestsPerSecond: 400,
			Burst:             40,
		},
		HoneypotSample: 5,
		HoneypotSettle: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	records, err := a.Collect()
	if err != nil {
		t.Fatal(err)
	}
	stats := a.listClient.Stats()
	if stats.CaptchasSolved == 0 {
		t.Error("no captchas solved despite CaptchaEvery")
	}
	// Yield must survive the defences: every InviteOK bot valid.
	okTruth := 0
	for _, b := range a.Ecosystem().Bots {
		if b.InviteHealth == listing.InviteOK {
			okTruth++
		}
	}
	got := 0
	for _, r := range records {
		if r.PermsValid {
			got++
		}
	}
	if got != okTruth {
		t.Errorf("valid records %d != ground truth %d", got, okTruth)
	}
}

func TestVettingRejectsTheHoneypotConfirmedBot(t *testing.T) {
	// Cross-validation of the mitigation: the one bot the DYNAMIC
	// analysis catches red-handed (Melonian) is also rejected by the
	// STATIC listing-time vetting rules — malicious bots don't publish
	// policies or source (§5), which the rules punish.
	a := newSmallAuditor(t, 150)
	res, err := a.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var melonian *vetting.Report
	for _, rep := range res.Vetting {
		if rep.Name == "Melonian" {
			melonian = rep
		}
	}
	if melonian == nil {
		t.Fatal("Melonian not vetted")
	}
	if melonian.Verdict != vetting.Reject {
		t.Errorf("Melonian verdict = %s, findings = %+v", melonian.Verdict, melonian.Findings)
	}
}

func TestScrapedPermsMatchGroundTruth(t *testing.T) {
	a := newSmallAuditor(t, 100)
	records, err := a.Collect()
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[int]permissions.Permission)
	for _, b := range a.Ecosystem().Bots {
		if b.InviteHealth == listing.InviteOK {
			truth[b.ID] = b.Perms
		}
	}
	for _, r := range records {
		if !r.PermsValid {
			continue
		}
		if want, ok := truth[r.ID]; !ok || want != r.Perms {
			t.Fatalf("bot %d perms = %s, truth %s (ok=%v)", r.ID, r.Perms, want, ok)
		}
	}
}
