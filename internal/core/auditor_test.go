package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/listing"
	"repro/internal/obs"
	"repro/internal/permissions"
	"repro/internal/vetting"
)

// newSmallAuditor builds a fast, fully-featured auditor over a small
// population.
func newSmallAuditor(t *testing.T, n int) *Auditor {
	t.Helper()
	a, err := NewAuditor(Options{
		Seed:    11,
		NumBots: n,
		Honeypot: HoneypotOptions{
			Sample:      20,
			Concurrency: 8,
			Settle:      400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func TestEndToEndPipeline(t *testing.T) {
	a := newSmallAuditor(t, 150)
	res, err := a.RunAllContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 150 {
		t.Fatalf("collected %d records", len(res.Records))
	}
	// Stage outputs are populated and mutually consistent.
	if len(res.PermDist) == 0 {
		t.Error("no permission distribution")
	}
	if res.Table2.ActiveBots == 0 || res.Table2.ActiveBots > 150 {
		t.Errorf("active bots = %d", res.Table2.ActiveBots)
	}
	if res.Table2.Traceability.Total != res.Table2.ActiveBots {
		t.Errorf("traceability total %d != active %d", res.Table2.Traceability.Total, res.Table2.ActiveBots)
	}
	if res.Table2.Traceability.Complete != 0 {
		t.Errorf("complete policies = %d, paper found none", res.Table2.Traceability.Complete)
	}
	if res.Code == nil || res.Code.ActiveBots != res.Table2.ActiveBots {
		t.Errorf("code analysis active = %v", res.Code)
	}
	if res.Honeypot == nil || res.Honeypot.Tested != 20 {
		t.Fatalf("honeypot tested = %+v", res.Honeypot)
	}
	// The single planted malicious bot is caught, and only it.
	if len(res.Honeypot.Triggered) != 1 || res.Honeypot.Triggered[0].Subject.Name != "Melonian" {
		t.Errorf("triggered = %+v", res.Honeypot.Triggered)
	}
	if len(res.BotsPerDeveloper) == 0 {
		t.Error("developer attribution missing")
	}
	// Extensions: data-type audit and vetting run as part of RunAll.
	if res.DataTypes == nil || res.DataTypes.Bots != res.Table2.ActiveBots {
		t.Errorf("data-type audit = %+v", res.DataTypes)
	}
	if res.VettingSummary.Total != len(res.Records) {
		t.Errorf("vetting covered %d of %d bots", res.VettingSummary.Total, len(res.Records))
	}
	if res.VettingSummary.Rejected == 0 {
		t.Error("a 55%-admin ecosystem should see vetting rejections")
	}
}

func TestReportRendersAllSections(t *testing.T) {
	a := newSmallAuditor(t, 120)
	res, err := a.RunAllContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	for _, want := range []string{
		"Scrape yield:",
		"Figure 3:",
		"Table 1:",
		"Table 2:",
		"Table 3:",
		"GitHub link taxonomy",
		"Honeypot campaign:",
		"Melonian",
		"Data-type audit",
		"Vetting (listing-time mitigation)",
		"send messages",
		"administrator",
		"Scraper stats:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestStagesRunIndividually(t *testing.T) {
	a := newSmallAuditor(t, 80)
	records, err := a.CollectContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := a.TraceabilityContext(context.Background(), records)
	if d.ActiveBots == 0 {
		t.Error("traceability saw no active bots")
	}
	code, analyses, err := a.CodeAnalysisContext(context.Background(), records)
	if err != nil {
		t.Fatal(err)
	}
	if code.WithLink != len(analyses) {
		t.Errorf("analyses %d != links %d", len(analyses), code.WithLink)
	}
}

func TestAuditorWithDefences(t *testing.T) {
	a, err := NewAuditor(Options{
		Seed:    13,
		NumBots: 60,
		Scrape: ScrapeOptions{AntiScrape: listing.AntiScrape{
			CaptchaEvery:      25,
			FlakyEvery:        3,
			RequestsPerSecond: 400,
			Burst:             40,
		}},
		Honeypot: HoneypotOptions{
			Sample: 5,
			Settle: 300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	records, err := a.CollectContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stats := a.listClient.Stats()
	if stats.CaptchasSolved == 0 {
		t.Error("no captchas solved despite CaptchaEvery")
	}
	// Yield must survive the defences: every InviteOK bot valid.
	okTruth := 0
	for _, b := range a.Ecosystem().Bots {
		if b.InviteHealth == listing.InviteOK {
			okTruth++
		}
	}
	got := 0
	for _, r := range records {
		if r.PermsValid {
			got++
		}
	}
	if got != okTruth {
		t.Errorf("valid records %d != ground truth %d", got, okTruth)
	}
}

func TestVettingRejectsTheHoneypotConfirmedBot(t *testing.T) {
	// Cross-validation of the mitigation: the one bot the DYNAMIC
	// analysis catches red-handed (Melonian) is also rejected by the
	// STATIC listing-time vetting rules — malicious bots don't publish
	// policies or source (§5), which the rules punish.
	a := newSmallAuditor(t, 150)
	res, err := a.RunAllContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var melonian *vetting.Report
	for _, rep := range res.Vetting {
		if rep.Name == "Melonian" {
			melonian = rep
		}
	}
	if melonian == nil {
		t.Fatal("Melonian not vetted")
	}
	if melonian.Verdict != vetting.Reject {
		t.Errorf("Melonian verdict = %s, findings = %+v", melonian.Verdict, melonian.Findings)
	}
}

func TestScrapedPermsMatchGroundTruth(t *testing.T) {
	a := newSmallAuditor(t, 100)
	records, err := a.CollectContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[int]permissions.Permission)
	for _, b := range a.Ecosystem().Bots {
		if b.InviteHealth == listing.InviteOK {
			truth[b.ID] = b.Perms
		}
	}
	for _, r := range records {
		if !r.PermsValid {
			continue
		}
		if want, ok := truth[r.ID]; !ok || want != r.Perms {
			t.Fatalf("bot %d perms = %s, truth %s (ok=%v)", r.ID, r.Perms, want, ok)
		}
	}
}

func TestObservabilityAcrossPipeline(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := NewAuditor(Options{
		Seed:    11,
		NumBots: 200,
		Honeypot: HoneypotOptions{
			Sample:      10,
			Concurrency: 8,
			Settle:      400 * time.Millisecond,
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)

	res, err := a.RunAllContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The run is recorded as a trace with one named span per stage.
	if res.Trace == nil {
		t.Fatal("RunAllContext produced no trace")
	}
	sum := res.Trace.Summary()
	names := make(map[string]bool)
	for _, s := range sum.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"collect", "traceability", "codeanalysis", "honeypot"} {
		if !names[want] {
			t.Errorf("trace missing stage span %q (have %v)", want, names)
		}
	}
	if len(sum.Spans) < 4 {
		t.Fatalf("trace has %d stage spans, want >= 4", len(sum.Spans))
	}

	// Instrumented services reported into the registry.
	if v := reg.Counter("scraper_requests_total").Value(); v == 0 {
		t.Error("scraper_requests_total = 0 after a crawl")
	}
	if v := reg.Counter("canary_triggers_total").Value(); v == 0 {
		t.Error("canary_triggers_total = 0 despite the planted snoop bot")
	}
	if v := reg.Counter("honeypot_experiments_completed_total").Value(); v != 10 {
		t.Errorf("honeypot_experiments_completed_total = %d, want 10", v)
	}

	// The text exposition endpoint on the listing server renders them.
	resp, err := http.Get(a.MetricsURL())
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	for _, want := range []string{
		"# TYPE scraper_requests_total counter",
		"scraper_requests_total ",
		"canary_triggers_total",
		"scraper_fetch_seconds_bucket",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(exposition, "\nscraper_requests_total 0\n") {
		t.Error("/metrics renders scraper_requests_total as 0")
	}

	// Report renders the per-stage timing table from the trace.
	var buf bytes.Buffer
	res.Report(&buf)
	if out := buf.String(); !strings.Contains(out, "Stage timings") || !strings.Contains(out, "collect") {
		t.Error("report missing stage-timings table")
	}
}

func TestRunAllContextCancelMidCrawl(t *testing.T) {
	a, err := NewAuditor(Options{
		Seed:    11,
		NumBots: 200,
		// Throttle hard so the crawl alone would take many seconds:
		// cancellation, not completion, must end the run.
		Scrape: ScrapeOptions{AntiScrape: listing.AntiScrape{RequestsPerSecond: 20, Burst: 5}},
		Obs:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = a.RunAllContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAllContext error = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled RunAllContext took %v, want < 1s", elapsed)
	}
}
