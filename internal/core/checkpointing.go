// Crash-safe checkpointing for the pipeline: RunAllContext persists
// progress snapshots at stage boundaries and every N settled bots, and
// a resumed run replays settled (bot, stage) pairs instead of
// re-executing them. The snapshot format and atomic store live in
// internal/checkpoint; this file is the pipeline-side accumulator that
// feeds them and the resume loader that validates and unpacks them.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/codeanalysis"
	"repro/internal/honeypot"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/retry"
	"repro/internal/scraper"
)

// ResumeLatest is the CheckpointOptions.Resume sentinel selecting the
// newest snapshot in the store instead of a specific run ID.
const ResumeLatest = "latest"

// ErrStageStalled is the cancellation cause the stage watchdog injects
// when a stage exceeds its soft deadline
// (Options.Exec.StageSoftDeadline).
var ErrStageStalled = errors.New("core: stage exceeded soft deadline")

// CheckpointOptions enables crash-safe checkpointing on RunAllContext.
// Checkpointing is on when either Store or Dir is set.
type CheckpointOptions struct {
	// Dir names a snapshot directory; NewAuditor opens (creating if
	// needed) a checkpoint.Store over it. Ignored when Store is set.
	Dir string
	// Store persists the snapshots; overrides Dir.
	Store *checkpoint.Store
	// Every writes a snapshot after that many freshly settled bots, in
	// addition to the unconditional writes at stage boundaries
	// (default 25).
	Every int
	// Resume selects a snapshot to resume from: a run ID, or
	// ResumeLatest for the newest in the store. Empty starts fresh.
	Resume string
}

// loadResume fetches and validates the snapshot named by
// Checkpoint.Resume. Identity fields must match the live options:
// resuming a checkpoint against a differently generated ecosystem
// would silently mix incompatible work, which is worse than refusing.
func (a *Auditor) loadResume() (*checkpoint.Snapshot, error) {
	cfg := a.opts.Checkpoint
	var snap *checkpoint.Snapshot
	var err error
	if cfg.Resume == ResumeLatest {
		snap, err = cfg.Store.Latest()
	} else {
		snap, err = cfg.Store.Load(cfg.Resume)
	}
	if err != nil {
		return nil, fmt.Errorf("core: resume: %w", err)
	}
	if snap.Seed != a.opts.Seed || snap.NumBots != a.opts.NumBots || snap.HoneypotSample != a.opts.Honeypot.Sample {
		return nil, fmt.Errorf(
			"core: resume: snapshot %s was written for seed=%d bots=%d sample=%d, run configured seed=%d bots=%d sample=%d",
			snap.RunID, snap.Seed, snap.NumBots, snap.HoneypotSample,
			a.opts.Seed, a.opts.NumBots, a.opts.Honeypot.Sample)
	}
	return snap, nil
}

// scraperResume unpacks a snapshot's collect-stage work into the form
// the crawl consumes.
func scraperResume(snap *checkpoint.Snapshot) *scraper.ResumeState {
	rs := &scraper.ResumeState{
		IDs:         snap.BotIDs,
		Records:     make(map[int]*scraper.Record, len(snap.Records)),
		Quarantined: make(map[int]error, len(snap.CollectQuarantine)),
	}
	for _, rec := range snap.Records {
		rs.Records[rec.ID] = rec
	}
	for _, q := range snap.CollectQuarantine {
		rs.Quarantined[q.BotID] = errors.New(q.Err)
	}
	return rs
}

// codeResume unpacks the code-analysis links.
func codeResume(snap *checkpoint.Snapshot) *codeanalysis.AnalyzeResume {
	return &codeanalysis.AnalyzeResume{
		Settled: snap.CodeLinks,
		Failed:  snap.CodeLinkErrs,
	}
}

// honeypotResume unpacks the settled experiments, keyed by listing ID.
func honeypotResume(snap *checkpoint.Snapshot) *honeypot.CampaignResume {
	hr := &honeypot.CampaignResume{
		Verdicts:    make(map[int]*honeypot.Verdict, len(snap.Verdicts)),
		Quarantined: make(map[int]error, len(snap.HoneypotQuarantine)),
	}
	for _, v := range snap.Verdicts {
		hr.Verdicts[v.Subject.ListingID] = v
	}
	for _, q := range snap.HoneypotQuarantine {
		hr.Quarantined[q.BotID] = errors.New(q.Err)
	}
	return hr
}

// ckptState accumulates settled work during a run and writes snapshots
// through the store. A nil *ckptState (checkpointing disabled) is a
// valid no-op, mirroring the repo's nil-Journal idiom.
type ckptState struct {
	store *checkpoint.Store
	every int

	mu    sync.Mutex
	snap  *checkpoint.Snapshot
	fresh int // settled bots since the last periodic write
	// budgets are snapshotted into BudgetLeft at every write so a
	// resumed run restores each stage's remainder.
	budgets map[string]*retry.Budget

	ctx     context.Context // run-correlated journal context
	cWrites *obs.Counter
	cErrors *obs.Counter
}

// newCkptState builds the accumulator over a base snapshot — a loaded
// one when resuming, a fresh identity-only one otherwise.
func newCkptState(cfg CheckpointOptions, base *checkpoint.Snapshot, reg *obs.Registry) *ckptState {
	every := cfg.Every
	if every <= 0 {
		every = 25
	}
	if base.CodeLinks == nil {
		base.CodeLinks = make(map[string]*codeanalysis.RepoAnalysis)
	}
	if base.CodeLinkErrs == nil {
		base.CodeLinkErrs = make(map[string]string)
	}
	if base.BudgetLeft == nil {
		base.BudgetLeft = make(map[string]int)
	}
	return &ckptState{
		store:   cfg.Store,
		every:   every,
		snap:    base,
		budgets: make(map[string]*retry.Budget),
		ctx:     context.Background(),
		cWrites: reg.Counter("core_checkpoints_written_total"),
		cErrors: reg.Counter("core_checkpoint_write_errors_total"),
	}
}

// trackBudget registers a stage budget whose remainder every snapshot
// captures.
func (c *ckptState) trackBudget(stage string, b *retry.Budget) {
	if c == nil || b == nil {
		return
	}
	c.mu.Lock()
	c.budgets[stage] = b
	c.mu.Unlock()
}

// noteListed records the crawl's work plan once pagination settles.
func (c *ckptState) noteListed(ids []int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if len(c.snap.BotIDs) == 0 {
		c.snap.BotIDs = append([]int(nil), ids...)
	}
	c.mu.Unlock()
}

// noteCollect records one freshly settled crawl outcome.
func (c *ckptState) noteCollect(id int, rec *scraper.Record, qerr error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if qerr != nil {
		c.snap.CollectQuarantine = append(c.snap.CollectQuarantine,
			checkpoint.QEntry{BotID: id, Err: qerr.Error()})
	} else {
		c.snap.Records = append(c.snap.Records, rec)
	}
	c.writeIfDueLocked("collect")
	c.mu.Unlock()
}

// noteLink records one freshly settled unique code link.
func (c *ckptState) noteLink(link string, ra *codeanalysis.RepoAnalysis, errText string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if errText != "" {
		c.snap.CodeLinkErrs[link] = errText
	} else {
		c.snap.CodeLinks[link] = ra
	}
	c.writeIfDueLocked("codeanalysis")
	c.mu.Unlock()
}

// noteVerdict records one freshly settled honeypot experiment.
func (c *ckptState) noteVerdict(botID int, v *honeypot.Verdict, qerr error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if qerr != nil {
		c.snap.HoneypotQuarantine = append(c.snap.HoneypotQuarantine,
			checkpoint.QEntry{BotID: botID, Err: qerr.Error()})
	} else {
		c.snap.Verdicts = append(c.snap.Verdicts, v)
	}
	c.writeIfDueLocked("honeypot")
	c.mu.Unlock()
}

// pendingOutcome is one settled per-bot outcome buffered by a sharded
// worker between checkpoint flushes: either a collect outcome (Rec or
// Qerr) or a honeypot outcome (V or Qerr), tagged by Stage.
type pendingOutcome struct {
	Stage string // "collect" or "honeypot"
	BotID int
	Rec   *scraper.Record
	V     *honeypot.Verdict
	Qerr  error
}

// noteBatch folds a worker's buffered outcomes into the snapshot under
// one lock acquisition — the sharded executor settles bots from many
// workers at once, and per-outcome locking plus per-outcome write
// checks would serialize them on checkpoint state. The batch still
// counts toward the periodic threshold, so durability lags by at most
// one worker buffer.
func (c *ckptState) noteBatch(batch []pendingOutcome) {
	if c == nil || len(batch) == 0 {
		return
	}
	c.mu.Lock()
	for _, p := range batch {
		switch {
		case p.Qerr != nil && p.Stage == "collect":
			c.snap.CollectQuarantine = append(c.snap.CollectQuarantine,
				checkpoint.QEntry{BotID: p.BotID, Err: p.Qerr.Error()})
		case p.Qerr != nil:
			c.snap.HoneypotQuarantine = append(c.snap.HoneypotQuarantine,
				checkpoint.QEntry{BotID: p.BotID, Err: p.Qerr.Error()})
		case p.Rec != nil:
			c.snap.Records = append(c.snap.Records, p.Rec)
		case p.V != nil:
			c.snap.Verdicts = append(c.snap.Verdicts, p.V)
		}
	}
	c.fresh += len(batch)
	if c.fresh >= c.every {
		c.writeLocked(batch[len(batch)-1].Stage)
	}
	c.mu.Unlock()
}

// boundary writes a snapshot unconditionally — called between stages,
// where a crash would otherwise lose the whole preceding stage.
func (c *ckptState) boundary(stage string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.writeLocked(stage)
	c.mu.Unlock()
}

// finish marks the run complete and writes the final snapshot.
func (c *ckptState) finish() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.snap.Completed = true
	c.writeLocked("final")
	c.mu.Unlock()
}

// writeIfDueLocked counts one settled bot and writes when the periodic
// threshold is reached. Caller holds c.mu.
func (c *ckptState) writeIfDueLocked(stage string) {
	c.fresh++
	if c.fresh >= c.every {
		c.writeLocked(stage)
	}
}

// writeLocked captures budget remainders and saves the snapshot. The
// save (file write + rename) runs under the lock: snapshots are small
// and holding it keeps the encoder from racing concurrent appends to
// the accumulating maps. Caller holds c.mu.
func (c *ckptState) writeLocked(stage string) {
	c.fresh = 0
	for name, b := range c.budgets {
		c.snap.BudgetLeft[name] = b.Remaining()
	}
	if err := c.store.Save(c.snap); err != nil {
		// A failed checkpoint must not fail the science: count it,
		// journal it, and keep the pipeline running on the previous
		// snapshot's durability.
		c.cErrors.Inc()
		journal.Emit(c.ctx, "core", journal.KindCheckpointWritten, map[string]any{
			"stage": stage,
			"error": err.Error(),
		})
		return
	}
	c.cWrites.Inc()
	journal.Emit(c.ctx, "core", journal.KindCheckpointWritten, map[string]any{
		"stage":   stage,
		"settled": c.snap.Settled(),
		"path":    c.store.Path(c.snap.RunID),
	})
}

// watchdog arms a soft-deadline timer over a stage context: on expiry
// it journals stage_stalled with a full goroutine dump, then cancels
// the stage with ErrStageStalled as the cause. The returned stop must
// be called when the stage ends.
func watchdog(sctx context.Context, name string, deadline time.Duration, cancel context.CancelCauseFunc) func() {
	t := time.AfterFunc(deadline, func() {
		// The dump is the point: a stalled stage's goroutines say where
		// it is stuck, and after cancellation that evidence is gone.
		buf := make([]byte, 256<<10)
		n := runtime.Stack(buf, true)
		journal.Emit(sctx, "core", journal.KindStageStalled, map[string]any{
			"stage":            name,
			"deadline_seconds": deadline.Seconds(),
			"goroutines":       string(buf[:n]),
		})
		cancel(fmt.Errorf("%w: stage %s after %s", ErrStageStalled, name, deadline))
	})
	return func() {
		t.Stop()
		cancel(nil)
	}
}
