// Package botsdk is the bot-developer SDK for the reproduction's
// messaging platform — the analogue of discord.js/discord.py in the
// paper's ecosystem. A Session connects to the gateway over TCP,
// dispatches events to registered handlers, and exposes action methods
// (send, history, kick, ban, …) that execute with the BOT's privileges.
//
// The SDK also exposes the permission-check helpers (HasPermission,
// MemberPermissions) whose *absence* in real bot code is what the
// paper's code analysis measures: a well-behaved command handler calls
// them on the invoking user before acting.
package botsdk

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/permissions"
	"repro/internal/retry"
)

// Errors returned by the SDK.
var (
	ErrClosed   = errors.New("botsdk: session closed")
	ErrIdentify = errors.New("botsdk: identify rejected")
	ErrTimeout  = errors.New("botsdk: request timed out")
	ErrStale    = errors.New("botsdk: response for unknown request")
)

// Message is a received or fetched message.
type Message struct {
	ID          string
	ChannelID   string
	GuildID     string
	AuthorID    string
	AuthorBot   bool
	Content     string
	Attachments []Attachment
}

// Attachment describes an uploaded file; Data is only populated by
// FetchAttachment.
type Attachment struct {
	ID          string
	Filename    string
	ContentType string
	Size        int
	Data        []byte
}

// Event is a dispatched platform event.
type Event struct {
	Type      string
	GuildID   string
	ChannelID string
	UserID    string
	Message   *Message

	interaction *Interaction
}

// Handler consumes dispatched events. Handlers run sequentially on the
// session's read loop; heavy work should be moved to a goroutine.
type Handler func(s *Session, e Event)

// Options tunes a Session.
type Options struct {
	// RequestTimeout bounds each round-trip; default 5s.
	RequestTimeout time.Duration
	// HeartbeatEvery, when positive, starts a background heartbeat.
	HeartbeatEvery time.Duration
	// DialTimeout bounds the TCP connect and the identify handshake;
	// default 5s.
	DialTimeout time.Duration
	// Retry governs the backoff applied when the gateway rate-limits a
	// request: the gateway's RetryAfterMS hint is honoured (clamped to
	// the policy's RetryAfterCap) with jittered exponential backoff
	// between attempts, and a shared Retry.Budget lets a fleet of
	// sessions (loadgen, the honeypot campaign) bound total retry work.
	// The zero value uses defaultRetryPolicy.
	Retry retry.Policy
}

// defaultRetryPolicy is tuned for gateway rate limits: short base
// delays (hints dominate), enough attempts to ride out a sustained
// throttle, and deterministic jitter.
func defaultRetryPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts:   8,
		BaseDelay:     2 * time.Millisecond,
		MaxDelay:      time.Second,
		Multiplier:    2,
		Jitter:        0.2,
		Seed:          1,
		RetryAfterCap: 2 * time.Second,
	}
}

// Session is one authenticated bot connection.
type Session struct {
	conn net.Conn

	writeMu sync.Mutex
	enc     *json.Encoder

	botID   string
	botName string
	guilds  []string

	reqTimeout  time.Duration
	retryPolicy retry.Policy
	nextID      int64

	mu       sync.Mutex
	pending  map[int64]chan gateway.Frame
	handlers map[string][]Handler
	closed   bool

	done   chan struct{}
	ctx    context.Context // cancelled on Close; bounds retry waits
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Dial connects to a gateway address and identifies with the bot token.
func Dial(addr, token string, opts Options) (*Session, error) {
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.Retry.MaxAttempts == 0 && opts.Retry.BaseDelay == 0 {
		budget := opts.Retry.Budget
		opts.Retry = defaultRetryPolicy()
		opts.Retry.Budget = budget
	}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("botsdk: dial %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Session{
		conn:        conn,
		enc:         json.NewEncoder(conn),
		reqTimeout:  opts.RequestTimeout,
		retryPolicy: opts.Retry,
		pending:     make(map[int64]chan gateway.Frame),
		handlers:    make(map[string][]Handler),
		done:        make(chan struct{}),
		ctx:         ctx,
		cancel:      cancel,
	}
	if err := s.send(gateway.Frame{Op: gateway.OpIdentify, Token: token}); err != nil {
		cancel()
		conn.Close()
		return nil, err
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	conn.SetReadDeadline(time.Now().Add(opts.DialTimeout))
	var ready gateway.Frame
	if err := dec.Decode(&ready); err != nil {
		cancel()
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrIdentify, err)
	}
	conn.SetReadDeadline(time.Time{})
	if ready.Op != gateway.OpReady {
		cancel()
		conn.Close()
		if ready.Err == gateway.ErrShedding {
			return nil, &ShedError{RetryAfter: time.Duration(ready.RetryAfterMS) * time.Millisecond}
		}
		return nil, fmt.Errorf("%w: %s", ErrIdentify, ready.Err)
	}
	s.botID, s.botName, s.guilds = ready.BotID, ready.BotName, ready.GuildIDs
	s.wg.Add(1)
	go s.readLoop(dec)
	if opts.HeartbeatEvery > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop(opts.HeartbeatEvery)
	}
	return s, nil
}

// Done returns a channel closed when the session terminates — either
// by Close or because the connection dropped.
func (s *Session) Done() <-chan struct{} { return s.done }

// BotID returns this session's bot account ID.
func (s *Session) BotID() string { return s.botID }

// BotName returns this session's bot account name.
func (s *Session) BotName() string { return s.botName }

// InitialGuilds returns the guild IDs reported in the ready frame.
func (s *Session) InitialGuilds() []string { return append([]string(nil), s.guilds...) }

// On registers a handler for an event type (e.g. "MESSAGE_CREATE").
func (s *Session) On(eventType string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[eventType] = append(s.handlers[eventType], h)
}

// OnMessage registers a MESSAGE_CREATE convenience handler.
func (s *Session) OnMessage(h func(s *Session, m *Message)) {
	s.On("MESSAGE_CREATE", func(s *Session, e Event) {
		if e.Message != nil {
			h(s, e.Message)
		}
	})
}

// Close tears the session down and waits for its goroutines.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.cancel()
	for id, ch := range s.pending {
		close(ch)
		delete(s.pending, id)
	}
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Session) send(f gateway.Frame) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.enc.Encode(f)
}

func (s *Session) readLoop(dec *json.Decoder) {
	defer s.wg.Done()
	for {
		var f gateway.Frame
		if err := dec.Decode(&f); err != nil {
			s.Close()
			return
		}
		switch f.Op {
		case gateway.OpDispatch:
			s.dispatch(f)
		case gateway.OpResponse:
			s.mu.Lock()
			ch, ok := s.pending[f.ID]
			if ok {
				delete(s.pending, f.ID)
			}
			s.mu.Unlock()
			if ok {
				ch <- f
				close(ch)
			}
		case gateway.OpHeartbeatAck, gateway.OpError:
			// acks are informational; errors surface via closed requests
		}
	}
}

func (s *Session) heartbeatLoop(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	var seq int64
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			seq++
			if err := s.send(gateway.Frame{Op: gateway.OpHeartbeat, Seq: seq}); err != nil {
				return
			}
		}
	}
}

func (s *Session) dispatch(f gateway.Frame) {
	e := Event{Type: f.Type}
	if f.Event != nil {
		e.GuildID, e.ChannelID, e.UserID = f.Event.GuildID, f.Event.ChannelID, f.Event.UserID
		if f.Event.Message != nil {
			e.Message = fromWire(f.Event.Message)
		}
		if f.Event.Interaction != nil {
			wi := f.Event.Interaction
			e.interaction = &Interaction{
				ID: wi.ID, GuildID: wi.GuildID, ChannelID: wi.ChannelID,
				UserID: wi.UserID, Command: wi.Command, Args: wi.Args,
			}
		}
	}
	s.mu.Lock()
	hs := append([]Handler(nil), s.handlers[e.Type]...)
	s.mu.Unlock()
	for _, h := range hs {
		h(s, e)
	}
}

func fromWire(wm *gateway.WireMessage) *Message {
	m := &Message{
		ID: wm.ID, ChannelID: wm.ChannelID, GuildID: wm.GuildID,
		AuthorID: wm.AuthorID, AuthorBot: wm.AuthorBot, Content: wm.Content,
	}
	for _, wa := range wm.Attachments {
		m.Attachments = append(m.Attachments, Attachment{
			ID: wa.ID, Filename: wa.Filename, ContentType: wa.ContentType, Size: wa.Size,
		})
	}
	return m
}

// ErrRateLimited surfaces when the gateway throttles and retries are
// exhausted.
var ErrRateLimited = errors.New("botsdk: rate limited")

// ErrShedding surfaces when the gateway refuses a connection outright
// under admission control (session cap or identify-rate throttle).
var ErrShedding = errors.New("botsdk: gateway shedding load")

// ShedError carries the gateway's shed refusal plus its backoff hint;
// errors.Is(err, ErrShedding) matches it.
type ShedError struct {
	// RetryAfter is the gateway's suggested wait before redialling.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("botsdk: gateway shedding load (retry after %v)", e.RetryAfter)
}

func (e *ShedError) Unwrap() error { return ErrShedding }

// request performs one round-trip, transparently backing off and
// retrying when the gateway rate-limits the session (like Discord SDKs
// honouring Retry-After). Backoff policy — jittered exponential delays,
// the gateway's RetryAfterMS hint, and the optional shared retry budget
// — comes from Options.Retry via internal/retry, so SDK clients degrade
// the same way every other stage of the pipeline does.
func (s *Session) request(method string, args map[string]any) (map[string]any, error) {
	var res map[string]any
	err := retry.Do(s.ctx, s.retryPolicy, func(context.Context) error {
		r, retryAfter, err := s.requestOnce(method, args)
		if err != nil {
			// Anything but a throttle (platform denial, timeout, closed
			// session) is not retryable at this layer.
			return retry.Permanent(err)
		}
		if retryAfter > 0 {
			return retry.After(ErrRateLimited, retryAfter)
		}
		res = r
		return nil
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return res, nil
}

// requestOnce performs one round-trip. A positive retryAfter means the
// gateway throttled the request.
func (s *Session) requestOnce(method string, args map[string]any) (map[string]any, time.Duration, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, ErrClosed
	}
	id := atomic.AddInt64(&s.nextID, 1)
	ch := make(chan gateway.Frame, 1)
	s.pending[id] = ch
	s.mu.Unlock()

	if err := s.send(gateway.Frame{Op: gateway.OpRequest, ID: id, Method: method, Args: args}); err != nil {
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
		return nil, 0, err
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return nil, 0, ErrClosed
		}
		if f.Err == gateway.ErrRateLimited {
			wait := time.Duration(f.RetryAfterMS) * time.Millisecond
			if wait <= 0 {
				wait = time.Millisecond
			}
			return nil, wait, nil
		}
		if !f.OK {
			return nil, 0, errors.New(f.Err)
		}
		return f.Result, 0, nil
	case <-time.After(s.reqTimeout):
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
		return nil, 0, ErrTimeout
	}
}

// Send posts a message to a channel.
func (s *Session) Send(channelID, content string) (string, error) {
	res, err := s.request(gateway.MethodSendMessage, map[string]any{
		"channel_id": channelID, "content": content,
	})
	if err != nil {
		return "", err
	}
	id, _ := res["message_id"].(string)
	return id, nil
}

// History fetches up to limit recent messages from a channel.
func (s *Session) History(channelID string, limit int) ([]*Message, error) {
	res, err := s.request(gateway.MethodHistory, map[string]any{
		"channel_id": channelID, "limit": float64(limit),
	})
	if err != nil {
		return nil, err
	}
	blob, _ := json.Marshal(res["messages"])
	var wire []*gateway.WireMessage
	if err := json.Unmarshal(blob, &wire); err != nil {
		return nil, err
	}
	out := make([]*Message, 0, len(wire))
	for _, wm := range wire {
		out = append(out, fromWire(wm))
	}
	return out, nil
}

// Guilds lists the guilds the bot currently belongs to.
func (s *Session) Guilds() ([]string, error) {
	res, err := s.request(gateway.MethodGuilds, nil)
	if err != nil {
		return nil, err
	}
	raw, _ := res["guild_ids"].(string)
	if raw == "" {
		return nil, nil
	}
	return strings.Split(raw, ","), nil
}

// ChannelRef identifies a channel within a guild summary.
type ChannelRef struct {
	ID   string
	Name string
	Kind string
}

// GuildInfo fetches a guild summary.
func (s *Session) GuildInfo(guildID string) (name string, members int, channels []ChannelRef, err error) {
	res, err := s.request(gateway.MethodGuildInfo, map[string]any{"guild_id": guildID})
	if err != nil {
		return "", 0, nil, err
	}
	name, _ = res["name"].(string)
	if f, ok := res["members"].(float64); ok {
		members = int(f)
	}
	if chans, ok := res["channels"].([]any); ok {
		for _, c := range chans {
			m, _ := c.(map[string]any)
			ref := ChannelRef{}
			ref.ID, _ = m["id"].(string)
			ref.Name, _ = m["name"].(string)
			ref.Kind, _ = m["kind"].(string)
			channels = append(channels, ref)
		}
	}
	return name, members, channels, nil
}

// Kick removes a member, acting with the bot's own privileges.
func (s *Session) Kick(guildID, userID string) error {
	_, err := s.request(gateway.MethodKick, map[string]any{"guild_id": guildID, "user_id": userID})
	return err
}

// Ban bans a member, acting with the bot's own privileges.
func (s *Session) Ban(guildID, userID string) error {
	_, err := s.request(gateway.MethodBan, map[string]any{"guild_id": guildID, "user_id": userID})
	return err
}

// EditNickname renames a member, acting with the bot's own privileges.
func (s *Session) EditNickname(guildID, userID, nick string) error {
	_, err := s.request(gateway.MethodEditNickname, map[string]any{
		"guild_id": guildID, "user_id": userID, "nick": nick,
	})
	return err
}

// FetchAttachment downloads an attachment's bytes — the moral
// equivalent of a bot opening a document posted in the channel, which
// is exactly the signal the paper's canary documents detect.
func (s *Session) FetchAttachment(channelID, messageID, attachmentID string) (*Attachment, error) {
	res, err := s.request(gateway.MethodGetAttachment, map[string]any{
		"channel_id": channelID, "message_id": messageID, "attachment_id": attachmentID,
	})
	if err != nil {
		return nil, err
	}
	a := &Attachment{ID: attachmentID}
	a.Filename, _ = res["filename"].(string)
	a.ContentType, _ = res["content_type"].(string)
	if data, ok := res["data"].(string); ok {
		blob, err := decodeB64(data)
		if err != nil {
			return nil, err
		}
		a.Data = blob
		a.Size = len(blob)
	}
	return a, nil
}

// MyPermissions fetches the bot's own effective guild permissions.
func (s *Session) MyPermissions(guildID string) (permissions.Permission, error) {
	res, err := s.request(gateway.MethodPermissions, map[string]any{"guild_id": guildID})
	if err != nil {
		return permissions.None, err
	}
	raw, _ := res["value"].(string)
	return permissions.ParseValue(raw)
}
