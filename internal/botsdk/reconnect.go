package botsdk

import (
	"errors"
	"sync"
	"time"
)

// Reconnector keeps a bot connected across gateway disconnects: when
// the underlying session dies it re-dials with exponential backoff,
// re-identifies, and re-registers every handler — what long-lived
// production bots (the paper's 3M-guild population) do implicitly.
type Reconnector struct {
	addr  string
	token string
	opts  Options

	// OnReconnect, when set, observes each successful reconnect with
	// its 1-based attempt count. Set before the first disconnect.
	OnReconnect func(attempt int)
	// MaxBackoff caps the redial backoff (default 2s).
	MaxBackoff time.Duration

	mu       sync.Mutex
	sess     *Session
	handlers []registeredHandler
	closed   bool
	wakeups  int

	wg sync.WaitGroup
}

type registeredHandler struct {
	eventType string
	h         Handler
}

// ErrReconnectorClosed is returned by calls on a closed Reconnector.
var ErrReconnectorClosed = errors.New("botsdk: reconnector closed")

// Reconnect dials the gateway and returns a self-healing session
// wrapper.
func Reconnect(addr, token string, opts Options) (*Reconnector, error) {
	sess, err := Dial(addr, token, opts)
	if err != nil {
		return nil, err
	}
	r := &Reconnector{addr: addr, token: token, opts: opts, sess: sess, MaxBackoff: 2 * time.Second}
	r.wg.Add(1)
	go r.watch(sess)
	return r, nil
}

// watch waits for the current session to die and re-dials.
func (r *Reconnector) watch(sess *Session) {
	defer r.wg.Done()
	<-sess.Done()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	backoff := 25 * time.Millisecond
	for attempt := 1; ; attempt++ {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()

		next, err := Dial(r.addr, r.token, r.opts)
		if err == nil {
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				next.Close()
				return
			}
			r.sess = next
			for _, rh := range r.handlers {
				next.On(rh.eventType, rh.h)
			}
			r.wakeups++
			cb := r.OnReconnect
			r.mu.Unlock()
			if cb != nil {
				cb(attempt)
			}
			r.wg.Add(1)
			go r.watch(next)
			return
		}
		time.Sleep(backoff)
		if backoff < r.MaxBackoff {
			backoff *= 2
		}
	}
}

// Session returns the current live session. It may die at any moment;
// prefer Do for request sequences.
func (r *Reconnector) Session() *Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sess
}

// Reconnects reports how many times the wrapper has re-established the
// connection.
func (r *Reconnector) Reconnects() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wakeups
}

// On registers a handler on the current session and on every future
// reconnected session.
func (r *Reconnector) On(eventType string, h Handler) {
	r.mu.Lock()
	r.handlers = append(r.handlers, registeredHandler{eventType, h})
	sess := r.sess
	r.mu.Unlock()
	sess.On(eventType, h)
}

// OnMessage registers a MESSAGE_CREATE convenience handler.
func (r *Reconnector) OnMessage(h func(s *Session, m *Message)) {
	r.On("MESSAGE_CREATE", func(s *Session, e Event) {
		if e.Message != nil {
			h(s, e.Message)
		}
	})
}

// Do runs fn against the current session, retrying once per fresh
// session (up to retries) when the session died underneath it.
func (r *Reconnector) Do(retries int, fn func(*Session) error) error {
	if retries < 1 {
		retries = 1
	}
	var lastErr error
	for i := 0; i < retries; i++ {
		sess := r.Session()
		if sess == nil {
			return ErrReconnectorClosed
		}
		lastErr = fn(sess)
		if lastErr == nil || !errors.Is(lastErr, ErrClosed) {
			return lastErr
		}
		// The session died; wait briefly for the watcher to replace it.
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			r.mu.Lock()
			replaced := r.sess != sess
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return ErrReconnectorClosed
			}
			if replaced {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return lastErr
}

// Close stops reconnecting and closes the live session.
func (r *Reconnector) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	sess := r.sess
	r.mu.Unlock()
	var err error
	if sess != nil {
		err = sess.Close()
	}
	r.wg.Wait()
	return err
}
