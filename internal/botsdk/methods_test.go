package botsdk

import (
	"encoding/base64"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/permissions"
)

// methodServer answers every request with a canned result keyed by
// method name, recording the args it saw.
type methodServer struct {
	results map[string]map[string]any
	seen    chan gateway.Frame
}

func startMethodServer(t *testing.T, results map[string]map[string]any) (*methodServer, string) {
	t.Helper()
	ms := &methodServer{results: results, seen: make(chan gateway.Frame, 16)}
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		for {
			var f gateway.Frame
			if err := dec.Decode(&f); err != nil {
				return
			}
			if f.Op != gateway.OpRequest {
				continue
			}
			select {
			case ms.seen <- f:
			default:
			}
			res, ok := ms.results[f.Method]
			if !ok {
				enc.Encode(gateway.Frame{Op: gateway.OpResponse, ID: f.ID, Err: "unknown method"})
				continue
			}
			enc.Encode(gateway.Frame{Op: gateway.OpResponse, ID: f.ID, OK: true, Result: res})
		}
	})
	return ms, srv.ln.Addr().String()
}

func (ms *methodServer) lastArgs(t *testing.T, method string) map[string]any {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case f := <-ms.seen:
			if f.Method == method {
				return f.Args
			}
		case <-deadline:
			t.Fatalf("request %s never reached the server", method)
		}
	}
}

func TestGuildInfoDecoding(t *testing.T) {
	ms, addr := startMethodServer(t, map[string]map[string]any{
		gateway.MethodGuildInfo: {
			"name": "testguild", "members": float64(7),
			"channels": []any{
				map[string]any{"id": "11", "name": "general", "kind": "text"},
				map[string]any{"id": "12", "name": "lounge", "kind": "voice"},
			},
		},
	})
	sess, err := Dial(addr, "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	name, members, channels, err := sess.GuildInfo("9")
	if err != nil {
		t.Fatal(err)
	}
	if name != "testguild" || members != 7 || len(channels) != 2 {
		t.Fatalf("GuildInfo = %q, %d, %v", name, members, channels)
	}
	if channels[1].Kind != "voice" || channels[1].ID != "12" {
		t.Errorf("channel decode = %+v", channels[1])
	}
	args := ms.lastArgs(t, gateway.MethodGuildInfo)
	if args["guild_id"] != "9" {
		t.Errorf("args = %v", args)
	}
}

func TestModerationMethodsSendRightArgs(t *testing.T) {
	ms, addr := startMethodServer(t, map[string]map[string]any{
		gateway.MethodBan:          {},
		gateway.MethodEditNickname: {},
		gateway.MethodKick:         {},
	})
	sess, err := Dial(addr, "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Ban("9", "42"); err != nil {
		t.Fatal(err)
	}
	args := ms.lastArgs(t, gateway.MethodBan)
	if args["guild_id"] != "9" || args["user_id"] != "42" {
		t.Errorf("ban args = %v", args)
	}
	if err := sess.EditNickname("9", "42", "newnick"); err != nil {
		t.Fatal(err)
	}
	args = ms.lastArgs(t, gateway.MethodEditNickname)
	if args["nick"] != "newnick" {
		t.Errorf("nick args = %v", args)
	}
	if err := sess.BanVia("77", "9", "42"); err != nil {
		t.Fatal(err)
	}
	args = ms.lastArgs(t, gateway.MethodBan)
	if args["interaction_id"] != "77" {
		t.Errorf("BanVia args = %v", args)
	}
}

func TestFetchAttachmentDecodesData(t *testing.T) {
	payload := []byte("document-bytes")
	_, addr := startMethodServer(t, map[string]map[string]any{
		gateway.MethodGetAttachment: {
			"filename": "x.pdf", "content_type": "application/pdf",
			"data": base64.StdEncoding.EncodeToString(payload),
		},
	})
	sess, err := Dial(addr, "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	att, err := sess.FetchAttachment("1", "2", "3")
	if err != nil {
		t.Fatal(err)
	}
	if att.Filename != "x.pdf" || string(att.Data) != string(payload) || att.Size != len(payload) {
		t.Errorf("attachment = %+v", att)
	}
	// Corrupt base64 surfaces as an error.
	_, addr2 := startMethodServer(t, map[string]map[string]any{
		gateway.MethodGetAttachment: {"filename": "x", "data": "!!!not-base64!!!"},
	})
	sess2, _ := Dial(addr2, "tok", Options{RequestTimeout: time.Second})
	defer sess2.Close()
	if _, err := sess2.FetchAttachment("1", "2", "3"); err == nil {
		t.Error("corrupt attachment data accepted")
	}
}

func TestPermissionMethodsDecode(t *testing.T) {
	want := permissions.SendMessages | permissions.KickMembers
	_, addr := startMethodServer(t, map[string]map[string]any{
		gateway.MethodPermissions:       {"value": want.Value(), "names": "kick members,send messages"},
		gateway.MethodMemberPermissions: {"value": permissions.Administrator.Value()},
	})
	sess, err := Dial(addr, "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	mine, err := sess.MyPermissions("9")
	if err != nil || mine != want {
		t.Errorf("MyPermissions = %s, %v", mine, err)
	}
	ok, err := sess.HasPermission("9", "42", permissions.BanMembers)
	if err != nil || !ok {
		t.Errorf("HasPermission via admin = %v, %v", ok, err)
	}
}

func TestVoiceStatesDecode(t *testing.T) {
	_, addr := startMethodServer(t, map[string]map[string]any{
		gateway.MethodVoiceStates: {
			"states": []any{
				map[string]any{"user_id": "4", "channel_id": "12", "muted": true, "deafened": false},
			},
		},
	})
	sess, err := Dial(addr, "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	states, err := sess.VoiceStates("9")
	if err != nil || len(states) != 1 {
		t.Fatalf("VoiceStates = %v, %v", states, err)
	}
	if states[0].UserID != "4" || !states[0].Muted || states[0].Deafened {
		t.Errorf("state = %+v", states[0])
	}
}

func TestRespondAndWebhookDecode(t *testing.T) {
	ms, addr := startMethodServer(t, map[string]map[string]any{
		gateway.MethodRespondInteraction: {"message_id": "m7"},
		gateway.MethodCreateWebhook:      {"webhook_id": "w1", "token": "sekrit"},
	})
	sess, err := Dial(addr, "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	id, err := sess.Respond("9", "55", "done")
	if err != nil || id != "m7" {
		t.Errorf("Respond = %q, %v", id, err)
	}
	args := ms.lastArgs(t, gateway.MethodRespondInteraction)
	if args["interaction_id"] != "55" || args["content"] != "done" {
		t.Errorf("respond args = %v", args)
	}
	whID, token, err := sess.CreateWebhook("11", "feed")
	if err != nil || whID != "w1" || token != "sekrit" {
		t.Errorf("CreateWebhook = %q, %q, %v", whID, token, err)
	}
}

func TestHistoryDecodesAttachmentsAndAuthors(t *testing.T) {
	_, addr := startMethodServer(t, map[string]map[string]any{
		gateway.MethodHistory: {
			"messages": []any{
				map[string]any{
					"id": "1", "channel_id": "11", "guild_id": "9",
					"author_id": "4", "author_bot": true, "content": "hi",
					"attachments": []any{
						map[string]any{"id": "a1", "filename": "f.docx", "content_type": "application/msword", "size": float64(12)},
					},
				},
			},
		},
	})
	sess, err := Dial(addr, "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	msgs, err := sess.History("11", 5)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("History = %v, %v", msgs, err)
	}
	m := msgs[0]
	if !m.AuthorBot || m.Content != "hi" || len(m.Attachments) != 1 || m.Attachments[0].Size != 12 {
		t.Errorf("message = %+v", m)
	}
}
