package botsdk

import (
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/gateway"
)

// flakyGateway accepts connections, serves identify+echo, and can drop
// the live connection on demand.
type flakyGateway struct {
	ln net.Listener
	t  *testing.T

	mu      sync.Mutex
	current net.Conn
	accepts int
	wg      sync.WaitGroup
}

func newFlakyGateway(t *testing.T) *flakyGateway {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g := &flakyGateway{ln: ln, t: t}
	g.wg.Add(1)
	go g.acceptLoop()
	t.Cleanup(func() { ln.Close(); g.dropAll(); g.wg.Wait() })
	return g
}

func (g *flakyGateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		g.current = conn
		g.accepts++
		g.mu.Unlock()
		g.wg.Add(1)
		go func(conn net.Conn) {
			defer g.wg.Done()
			defer conn.Close()
			dec := json.NewDecoder(conn)
			enc := json.NewEncoder(conn)
			var f gateway.Frame
			if err := dec.Decode(&f); err != nil || f.Op != gateway.OpIdentify {
				return
			}
			enc.Encode(gateway.Frame{Op: gateway.OpReady, BotID: "1", BotName: "flaky", GuildIDs: []string{"9"}})
			for {
				if err := dec.Decode(&f); err != nil {
					return
				}
				if f.Op == gateway.OpRequest {
					enc.Encode(gateway.Frame{Op: gateway.OpResponse, ID: f.ID, OK: true,
						Result: map[string]any{"message_id": "pong"}})
				}
			}
		}(conn)
	}
}

// drop severs the current connection.
func (g *flakyGateway) drop() {
	g.mu.Lock()
	conn := g.current
	g.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

func (g *flakyGateway) dropAll() { g.drop() }

func (g *flakyGateway) acceptCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.accepts
}

func TestReconnectorHealsAfterDrop(t *testing.T) {
	g := newFlakyGateway(t)
	reconnected := make(chan int, 4)
	r, err := Reconnect(g.ln.Addr().String(), "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.OnReconnect = func(attempt int) { reconnected <- attempt }

	if _, err := r.Session().Send("9", "before"); err != nil {
		t.Fatal(err)
	}
	g.drop()
	select {
	case <-reconnected:
	case <-time.After(5 * time.Second):
		t.Fatal("no reconnect after drop")
	}
	if r.Reconnects() != 1 {
		t.Errorf("reconnects = %d", r.Reconnects())
	}
	// The healed session serves requests.
	err = r.Do(3, func(s *Session) error {
		_, err := s.Send("9", "after")
		return err
	})
	if err != nil {
		t.Fatalf("post-reconnect send: %v", err)
	}
	if g.acceptCount() < 2 {
		t.Errorf("gateway saw %d connections", g.acceptCount())
	}
}

func TestReconnectorReregistersHandlers(t *testing.T) {
	g := newFlakyGateway(t)
	r, err := Reconnect(g.ln.Addr().String(), "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seen := make(chan string, 4)
	r.OnMessage(func(s *Session, m *Message) { seen <- m.Content })

	reconnected := make(chan int, 1)
	r.OnReconnect = func(attempt int) { reconnected <- attempt }
	g.drop()
	select {
	case <-reconnected:
	case <-time.After(5 * time.Second):
		t.Fatal("no reconnect")
	}
	// After healing, the NEW session must still carry the handler: the
	// fresh session's handler table was rebuilt from the registry.
	sess := r.Session()
	sess.mu.Lock()
	n := len(sess.handlers["MESSAGE_CREATE"])
	sess.mu.Unlock()
	if n != 1 {
		t.Errorf("handlers on healed session = %d", n)
	}
}

func TestReconnectorDoRetriesAcrossDrop(t *testing.T) {
	g := newFlakyGateway(t)
	r, err := Reconnect(g.ln.Addr().String(), "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sess := r.Session()
	g.drop()
	<-sess.Done()
	// Do against the dead session transparently lands on the healed one.
	err = r.Do(3, func(s *Session) error {
		_, err := s.Send("9", "retry me")
		return err
	})
	if err != nil {
		t.Fatalf("Do across drop: %v", err)
	}
}

func TestReconnectorCloseStopsHealing(t *testing.T) {
	g := newFlakyGateway(t)
	r, err := Reconnect(g.ln.Addr().String(), "tok", Options{RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	before := g.acceptCount()
	time.Sleep(150 * time.Millisecond)
	if g.acceptCount() != before {
		t.Error("reconnector kept dialing after Close")
	}
	if err := r.Do(1, func(s *Session) error { return nil }); err == nil {
		// Do on a closed reconnector may still see the last session;
		// acceptable either way as long as no panic. Exercise both paths.
		_ = err
	}
}

func TestReconnectorGivesUpNeverButBacksOff(t *testing.T) {
	// Server that dies permanently: the reconnector must keep retrying
	// with backoff without spinning; Close must still terminate it.
	g := newFlakyGateway(t)
	r, err := Reconnect(g.ln.Addr().String(), "tok", Options{RequestTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g.ln.Close() // no more accepts
	g.drop()
	time.Sleep(100 * time.Millisecond) // let it retry a few times
	done := make(chan error, 1)
	go func() { done <- r.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung while reconnector was retrying")
	}
}
