package botsdk

import (
	"encoding/base64"

	"repro/internal/gateway"
	"repro/internal/permissions"
)

func decodeB64(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }

// MemberPermissions fetches the effective guild permissions of an
// arbitrary member — the SDK's analogue of discord.js's
// `member.permissions` / discord.py's `ctx.author.guild_permissions`.
func (s *Session) MemberPermissions(guildID, userID string) (permissions.Permission, error) {
	res, err := s.request(gateway.MethodMemberPermissions, map[string]any{
		"guild_id": guildID, "user_id": userID,
	})
	if err != nil {
		return permissions.None, err
	}
	raw, _ := res["value"].(string)
	return permissions.ParseValue(raw)
}

// VoiceState is a member's voice-channel presence as seen by a bot.
type VoiceState struct {
	UserID    string
	ChannelID string
	Muted     bool
	Deafened  bool
}

// VoiceStates fetches the guild's voice metadata — the data class a
// view-channel grant exposes to every installed bot.
func (s *Session) VoiceStates(guildID string) ([]VoiceState, error) {
	res, err := s.request(gateway.MethodVoiceStates, map[string]any{"guild_id": guildID})
	if err != nil {
		return nil, err
	}
	raw, _ := res["states"].([]any)
	out := make([]VoiceState, 0, len(raw))
	for _, item := range raw {
		m, _ := item.(map[string]any)
		var st VoiceState
		st.UserID, _ = m["user_id"].(string)
		st.ChannelID, _ = m["channel_id"].(string)
		st.Muted, _ = m["muted"].(bool)
		st.Deafened, _ = m["deafened"].(bool)
		out = append(out, st)
	}
	return out, nil
}

// HasPermission reports whether a member holds a permission in a guild.
// This is the check the paper's code analysis looks for (Table 3:
// `.hasPermission(`, `.has(`, `member.roles.cache`, `userPermissions`):
// a conscientious command handler calls it on the INVOKING user before
// acting; bots that skip it enable permission re-delegation.
func (s *Session) HasPermission(guildID, userID string, need permissions.Permission) (bool, error) {
	perms, err := s.MemberPermissions(guildID, userID)
	if err != nil {
		return false, err
	}
	return perms.Effective().Has(need), nil
}
