package botsdk

import "repro/internal/gateway"

// Interaction is a received slash-command invocation. Unlike a prefix
// message, it names the invoking user authoritatively, so command
// handlers can check permissions against the right principal — and so
// a runtime enforcer can attribute follow-up actions exactly.
type Interaction struct {
	ID        string
	GuildID   string
	ChannelID string
	UserID    string
	Command   string
	Args      string
}

// OnInteraction registers a handler for slash-command invocations
// addressed to this bot.
func (s *Session) OnInteraction(h func(s *Session, in *Interaction)) {
	s.On(string("INTERACTION_CREATE"), func(s *Session, e Event) {
		if e.interaction != nil {
			h(s, e.interaction)
		}
	})
}

// Respond posts the bot's reply to an interaction.
func (s *Session) Respond(guildID, interactionID, content string) (string, error) {
	res, err := s.request(gateway.MethodRespondInteraction, map[string]any{
		"guild_id": guildID, "interaction_id": interactionID, "content": content,
	})
	if err != nil {
		return "", err
	}
	id, _ := res["message_id"].(string)
	return id, nil
}

// KickVia kicks a member citing the interaction that requested it, so
// interaction-aware platforms (enforcer in exact mode) can attribute
// the action to the invoking user rather than guessing.
func (s *Session) KickVia(interactionID, guildID, userID string) error {
	_, err := s.request(gateway.MethodKick, map[string]any{
		"guild_id": guildID, "user_id": userID, "interaction_id": interactionID,
	})
	return err
}

// BanVia bans a member citing the requesting interaction.
func (s *Session) BanVia(interactionID, guildID, userID string) error {
	_, err := s.request(gateway.MethodBan, map[string]any{
		"guild_id": guildID, "user_id": userID, "interaction_id": interactionID,
	})
	return err
}

// CreateWebhook mints a webhook on a channel (requires the bot to hold
// manage-webhooks there). The returned token posts without any further
// authentication — which is precisely why over-granting this permission
// is dangerous.
func (s *Session) CreateWebhook(channelID, name string) (id, token string, err error) {
	res, err := s.request(gateway.MethodCreateWebhook, map[string]any{
		"channel_id": channelID, "name": name,
	})
	if err != nil {
		return "", "", err
	}
	id, _ = res["webhook_id"].(string)
	token, _ = res["token"].(string)
	return id, token, nil
}
