package botsdk

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/gateway"
)

// scriptedServer is a minimal fake gateway for protocol edge cases the
// real-gateway integration tests (in internal/gateway) don't cover.
type scriptedServer struct {
	ln     net.Listener
	t      *testing.T
	handle func(conn net.Conn, dec *json.Decoder, enc *json.Encoder)
	wg     sync.WaitGroup
}

func newScripted(t *testing.T, handle func(net.Conn, *json.Decoder, *json.Encoder)) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{ln: ln, t: t, handle: handle}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				dec := json.NewDecoder(bufio.NewReader(conn))
				enc := json.NewEncoder(conn)
				s.handle(conn, dec, enc)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); s.wg.Wait() })
	return s
}

// acceptIdentify reads the identify frame and sends ready.
func acceptIdentify(t *testing.T, dec *json.Decoder, enc *json.Encoder) bool {
	var f gateway.Frame
	if err := dec.Decode(&f); err != nil {
		return false
	}
	if f.Op != gateway.OpIdentify {
		t.Errorf("first frame op = %s", f.Op)
		return false
	}
	enc.Encode(gateway.Frame{Op: gateway.OpReady, BotID: "1", BotName: "fake", GuildIDs: []string{"9"}})
	return true
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "tok", Options{}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestDialRejectedByErrorFrame(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		var f gateway.Frame
		dec.Decode(&f)
		enc.Encode(gateway.Frame{Op: gateway.OpError, Err: "invalid token"})
	})
	_, err := Dial(srv.ln.Addr().String(), "bad", Options{})
	if !errors.Is(err, ErrIdentify) {
		t.Errorf("err = %v, want ErrIdentify", err)
	}
}

func TestDialServerSilent(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		var f gateway.Frame
		dec.Decode(&f) // read identify, never answer; returns on close
		dec.Decode(&f)
	})
	start := time.Now()
	_, err := Dial(srv.ln.Addr().String(), "tok", Options{DialTimeout: 150 * time.Millisecond})
	if !errors.Is(err, ErrIdentify) {
		t.Errorf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("dial did not respect the identify deadline")
	}
}

func TestRequestTimeout(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		// Swallow every request, never respond.
		for {
			var f gateway.Frame
			if err := dec.Decode(&f); err != nil {
				return
			}
		}
	})
	sess, err := Dial(srv.ln.Addr().String(), "tok", Options{RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Send("9", "x"); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestReadyFieldsExposed(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		var f gateway.Frame
		dec.Decode(&f) // hold the connection open
	})
	sess, err := Dial(srv.ln.Addr().String(), "tok", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.BotID() != "1" || sess.BotName() != "fake" {
		t.Errorf("identity = %s/%s", sess.BotID(), sess.BotName())
	}
	g := sess.InitialGuilds()
	if len(g) != 1 || g[0] != "9" {
		t.Errorf("guilds = %v", g)
	}
	g[0] = "mutated"
	if sess.InitialGuilds()[0] != "9" {
		t.Error("InitialGuilds shares backing storage")
	}
}

func TestDispatchFanOutAndHandlerOrder(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		enc.Encode(gateway.Frame{
			Op: gateway.OpDispatch, Type: "MESSAGE_CREATE",
			Event: &gateway.WireEvent{
				GuildID: "9", ChannelID: "2", UserID: "3",
				Message: &gateway.WireMessage{ID: "m1", Content: "hi", Attachments: []gateway.WireAttachment{{ID: "a1", Filename: "f.pdf", Size: 7}}},
			},
		})
		enc.Encode(gateway.Frame{Op: gateway.OpDispatch, Type: "GUILD_MEMBER_ADD",
			Event: &gateway.WireEvent{GuildID: "9", UserID: "4"}})
		var f gateway.Frame
		dec.Decode(&f)
	})
	sess, err := Dial(srv.ln.Addr().String(), "tok", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	got := make(chan string, 4)
	sess.OnMessage(func(s *Session, m *Message) {
		if len(m.Attachments) != 1 || m.Attachments[0].Filename != "f.pdf" || m.Attachments[0].Size != 7 {
			t.Errorf("attachment meta lost: %+v", m.Attachments)
		}
		got <- "msg:" + m.Content
	})
	sess.On("GUILD_MEMBER_ADD", func(s *Session, e Event) {
		got <- "join:" + e.UserID
	})
	// Handlers may be registered after dial; events raced ahead are
	// acceptable to lose, so redeliver expectations loosely: wait for
	// either event with a timeout.
	deadline := time.After(2 * time.Second)
	seen := map[string]bool{}
	for len(seen) < 2 {
		select {
		case v := <-got:
			seen[v] = true
		case <-deadline:
			t.Fatalf("events seen: %v", seen)
		}
	}
	if !seen["msg:hi"] || !seen["join:4"] {
		t.Errorf("seen = %v", seen)
	}
}

func TestConcurrentRequestsMultiplex(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		var mu sync.Mutex
		for {
			var f gateway.Frame
			if err := dec.Decode(&f); err != nil {
				return
			}
			go func(f gateway.Frame) {
				// Answer out of order to exercise correlation.
				time.Sleep(time.Duration(f.ID%7) * 3 * time.Millisecond)
				mu.Lock()
				defer mu.Unlock()
				enc.Encode(gateway.Frame{
					Op: gateway.OpResponse, ID: f.ID, OK: true,
					Result: map[string]any{"message_id": "echo"},
				})
			}(f)
		}
	})
	sess, err := Dial(srv.ln.Addr().String(), "tok", Options{RequestTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if id, err := sess.Send("9", "x"); err != nil || id != "echo" {
				t.Errorf("send = %q, %v", id, err)
			}
		}()
	}
	wg.Wait()
}

func TestServerDisconnectFailsPending(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		var f gateway.Frame
		dec.Decode(&f)
		conn.Close() // drop mid-request
	})
	sess, err := Dial(srv.ln.Addr().String(), "tok", Options{RequestTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Send("9", "x"); err == nil {
		t.Error("request across a dropped connection succeeded")
	}
}

func TestErrorResponseSurfaces(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		for {
			var f gateway.Frame
			if err := dec.Decode(&f); err != nil {
				return
			}
			enc.Encode(gateway.Frame{Op: gateway.OpResponse, ID: f.ID, OK: false, Err: "platform: permission denied"})
		}
	})
	sess, err := Dial(srv.ln.Addr().String(), "tok", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, err = sess.History("9", 5)
	if err == nil || err.Error() != "platform: permission denied" {
		t.Errorf("err = %v", err)
	}
	if err := sess.Kick("9", "3"); err == nil {
		t.Error("kick error swallowed")
	}
}

func TestCloseIdempotentAndFailsFurtherUse(t *testing.T) {
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		var f gateway.Frame
		dec.Decode(&f)
	})
	sess, err := Dial(srv.ln.Addr().String(), "tok", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("second close err = %v", err)
	}
	if _, err := sess.Guilds(); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close request err = %v", err)
	}
}

func TestHeartbeatFramesSent(t *testing.T) {
	beats := make(chan int64, 8)
	srv := newScripted(t, func(conn net.Conn, dec *json.Decoder, enc *json.Encoder) {
		if !acceptIdentify(t, dec, enc) {
			return
		}
		for {
			var f gateway.Frame
			if err := dec.Decode(&f); err != nil {
				return
			}
			if f.Op == gateway.OpHeartbeat {
				beats <- f.Seq
				enc.Encode(gateway.Frame{Op: gateway.OpHeartbeatAck, Seq: f.Seq})
			}
		}
	})
	sess, err := Dial(srv.ln.Addr().String(), "tok", Options{HeartbeatEvery: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var seqs []int64
	timeout := time.After(2 * time.Second)
	for len(seqs) < 3 {
		select {
		case s := <-beats:
			seqs = append(seqs, s)
		case <-timeout:
			t.Fatalf("only %d heartbeats", len(seqs))
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Errorf("heartbeat seq not monotone: %v", seqs)
		}
	}
}
