package codehost

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func sampleRepo() *Repo {
	return &Repo{
		Owner: "alice",
		Name:  "mixed",
		Files: []File{
			{Path: "README.md", Content: "# mixed"},
			{Path: "index.js", Content: strings.Repeat("x", 300)},
			{Path: "util.js", Content: strings.Repeat("y", 100)},
			{Path: "helper.py", Content: strings.Repeat("z", 100)},
		},
	}
}

func TestLanguagesLinguistStyle(t *testing.T) {
	r := sampleRepo()
	langs := r.Languages()
	if len(langs) != 2 {
		t.Fatalf("languages = %v", langs)
	}
	if langs[0].Language != "JavaScript" || langs[0].Bytes != 400 {
		t.Errorf("top language = %+v", langs[0])
	}
	if langs[1].Language != "Python" || langs[1].Bytes != 100 {
		t.Errorf("second language = %+v", langs[1])
	}
	if pct := langs[0].Pct; pct < 79.9 || pct > 80.1 {
		t.Errorf("JS pct = %f", pct)
	}
	if r.MainLanguage() != "JavaScript" {
		t.Errorf("main language = %q", r.MainLanguage())
	}
}

func TestLanguagesEmptyForDocsOnly(t *testing.T) {
	r := &Repo{Owner: "a", Name: "docs", Files: []File{
		{Path: "README.md", Content: "# docs"},
		{Path: "LICENSE", Content: "MIT"},
	}}
	if got := r.Languages(); got != nil {
		t.Errorf("docs-only languages = %v", got)
	}
	if r.MainLanguage() != "" {
		t.Errorf("docs-only main language = %q", r.MainLanguage())
	}
}

func TestLanguageTieBreak(t *testing.T) {
	r := &Repo{Owner: "a", Name: "tie", Files: []File{
		{Path: "a.js", Content: "12345"},
		{Path: "b.py", Content: "12345"},
	}}
	// Equal bytes: alphabetical order decides, deterministically.
	if r.MainLanguage() != "JavaScript" {
		t.Errorf("tie-break main = %q", r.MainLanguage())
	}
}

func TestSourceFilesFilter(t *testing.T) {
	r := sampleRepo()
	if got := len(r.SourceFiles("")); got != 3 {
		t.Errorf("all source files = %d", got)
	}
	if got := len(r.SourceFiles("JavaScript")); got != 2 {
		t.Errorf("js files = %d", got)
	}
	if got := len(r.SourceFiles("Rust")); got != 0 {
		t.Errorf("rust files = %d", got)
	}
}

func TestHostRegistry(t *testing.T) {
	h := NewHost()
	h.AddRepo(sampleRepo())
	h.AddProfile("ghost")
	if h.Len() != 1 {
		t.Errorf("len = %d", h.Len())
	}
	if _, ok := h.Repo("alice/mixed"); !ok {
		t.Error("repo lookup miss")
	}
	if _, ok := h.Repo("alice/none"); ok {
		t.Error("ghost repo hit")
	}
	names, ok := h.Profile("alice")
	if !ok || len(names) != 1 || names[0] != "mixed" {
		t.Errorf("profile = %v, %v", names, ok)
	}
	names, ok = h.Profile("ghost")
	if !ok || len(names) != 0 {
		t.Errorf("empty profile = %v, %v", names, ok)
	}
	if _, ok := h.Profile("nobody"); ok {
		t.Error("unknown profile hit")
	}
	// AddProfile must not clobber an existing repo list.
	h.AddProfile("alice")
	if names, _ := h.Profile("alice"); len(names) != 1 {
		t.Error("AddProfile clobbered repo list")
	}
}

func serverFixture(t *testing.T) string {
	t.Helper()
	h := NewHost()
	h.AddRepo(sampleRepo())
	h.AddProfile("ghost")
	srv, err := NewServer(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.BaseURL()
}

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestServerRepoPage(t *testing.T) {
	base := serverFixture(t)
	code, body := fetch(t, base+"/alice/mixed")
	if code != 200 {
		t.Fatalf("repo page status = %d", code)
	}
	for _, want := range []string{`id="repo"`, `id="code-section"`, `id="lang-bar"`, `data-lang="JavaScript"`, "index.js"} {
		if !strings.Contains(body, want) {
			t.Errorf("repo page missing %q", want)
		}
	}
	code, _ = fetch(t, base+"/alice/none")
	if code != 404 {
		t.Errorf("ghost repo status = %d", code)
	}
}

func TestServerProfilePages(t *testing.T) {
	base := serverFixture(t)
	code, body := fetch(t, base+"/alice")
	if code != 200 || !strings.Contains(body, `class="repo"`) {
		t.Errorf("profile page: %d", code)
	}
	code, body = fetch(t, base+"/ghost")
	if code != 200 || strings.Contains(body, `class="repo"`) {
		t.Errorf("empty profile should list no repos: %d", code)
	}
	code, _ = fetch(t, base+"/nobody")
	if code != 404 {
		t.Errorf("unknown profile status = %d", code)
	}
	code, _ = fetch(t, base+"/")
	if code != 404 {
		t.Errorf("root status = %d", code)
	}
}

func TestServerRawFiles(t *testing.T) {
	base := serverFixture(t)
	code, body := fetch(t, base+"/alice/mixed/raw/index.js")
	if code != 200 || len(body) != 300 {
		t.Errorf("raw file: %d, %d bytes", code, len(body))
	}
	code, _ = fetch(t, base+"/alice/mixed/raw/missing.js")
	if code != 404 {
		t.Errorf("missing raw status = %d", code)
	}
	code, _ = fetch(t, base+"/alice/none/raw/x.js")
	if code != 404 {
		t.Errorf("raw in ghost repo status = %d", code)
	}
}

func TestDocsOnlyRepoHasNoLangBar(t *testing.T) {
	h := NewHost()
	h.AddRepo(&Repo{Owner: "d", Name: "docs", Files: []File{{Path: "README.md", Content: "#"}}})
	srv, err := NewServer(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := fetch(t, srv.BaseURL()+"/d/docs")
	if code != 200 {
		t.Fatal(code)
	}
	if strings.Contains(body, "lang-bar") {
		t.Error("docs-only repo rendered a language bar")
	}
	if !strings.Contains(body, "code-section") {
		t.Error("repo with files should render the code section")
	}
}
