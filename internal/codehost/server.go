package codehost

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/htmlparse"
)

// Server exposes a Host over HTTP with GitHub-shaped URLs:
//
//	GET /{owner}            — profile page listing public repos
//	GET /{owner}/{repo}     — repository page with code section + language bar
//	GET /{owner}/{repo}/raw/{path...} — raw file contents
type Server struct {
	host *Host
	srv  *http.Server
	ln   net.Listener

	// handler is the effective root handler — the router, possibly
	// wrapped by middleware installed via SetMiddleware.
	handler atomic.Value // of handlerBox
}

// handlerBox gives atomic.Value the single concrete type it requires
// while the boxed handler's type varies.
type handlerBox struct{ h http.Handler }

// NewServer starts a code-host frontend on addr.
func NewServer(h *Host, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("codehost: listen: %w", err)
	}
	s := &Server{host: h, ln: ln}
	s.handler.Store(handlerBox{http.HandlerFunc(s.route)})
	s.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.handler.Load().(handlerBox).h.ServeHTTP(w, r)
	})}
	go s.srv.Serve(ln)
	return s, nil
}

// BaseURL returns the host root.
func (s *Server) BaseURL() string { return "http://" + s.ln.Addr().String() }

// SetMiddleware wraps the router in mw — the chaos harness's fault
// injection hook. Passing nil restores the bare router. Safe to call
// while serving.
func (s *Server) SetMiddleware(mw func(http.Handler) http.Handler) {
	base := http.Handler(http.HandlerFunc(s.route))
	if mw == nil {
		s.handler.Store(handlerBox{base})
		return
	}
	s.handler.Store(handlerBox{mw(base)})
}

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	switch {
	case len(parts) == 1 && parts[0] != "":
		s.profile(w, r, parts[0])
	case len(parts) == 2:
		s.repoPage(w, r, parts[0]+"/"+parts[1])
	case len(parts) >= 4 && parts[2] == "raw":
		s.rawFile(w, r, parts[0]+"/"+parts[1], strings.Join(parts[3:], "/"))
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) profile(w http.ResponseWriter, r *http.Request, owner string) {
	names, ok := s.host.Profile(owner)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, `<html><body><div id="profile" data-owner="%s"><h1>%s</h1><ul class="repo-list">`,
		htmlparse.EscapeAttr(owner), htmlparse.EscapeText(owner))
	for _, n := range names {
		fmt.Fprintf(&b, `<li class="repo"><a href="/%s/%s">%s</a></li>`,
			htmlparse.EscapeAttr(owner), htmlparse.EscapeAttr(n), htmlparse.EscapeText(n))
	}
	b.WriteString(`</ul></div></body></html>`)
	fmt.Fprint(w, b.String())
}

func (s *Server) repoPage(w http.ResponseWriter, r *http.Request, fullName string) {
	repo, ok := s.host.Repo(fullName)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, `<html><body><div id="repo" data-full-name="%s"><h1>%s</h1>`,
		htmlparse.EscapeAttr(fullName), htmlparse.EscapeText(fullName))
	// The "code section" the paper's scraper checks for: present only
	// when the repository actually holds files.
	if len(repo.Files) > 0 {
		b.WriteString(`<div id="code-section"><ul class="file-list">`)
		for _, f := range repo.Files {
			fmt.Fprintf(&b, `<li class="file"><a href="/%s/raw/%s">%s</a></li>`,
				htmlparse.EscapeAttr(fullName), htmlparse.EscapeAttr(f.Path), htmlparse.EscapeText(f.Path))
		}
		b.WriteString(`</ul></div>`)
	}
	if langs := repo.Languages(); len(langs) > 0 {
		b.WriteString(`<div id="lang-bar">`)
		for _, l := range langs {
			fmt.Fprintf(&b, `<span class="lang" data-lang="%s" data-pct="%.1f">%s %.1f%%</span>`,
				htmlparse.EscapeAttr(l.Language), l.Pct, htmlparse.EscapeText(l.Language), l.Pct)
		}
		b.WriteString(`</div>`)
	}
	b.WriteString(`</div></body></html>`)
	fmt.Fprint(w, b.String())
}

func (s *Server) rawFile(w http.ResponseWriter, r *http.Request, fullName, path string) {
	repo, ok := s.host.Repo(fullName)
	if !ok {
		http.NotFound(w, r)
		return
	}
	for _, f := range repo.Files {
		if f.Path == path {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, f.Content)
			return
		}
	}
	http.NotFound(w, r)
}
