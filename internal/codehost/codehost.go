// Package codehost simulates the code-hosting side of the paper's code
// analysis: repositories with files, per-repository language statistics
// (computed linguist-style from file extensions and sizes), user
// profile pages, and the link failure modes §4.2 catalogues — links
// that lead to profiles instead of repositories, profiles without
// public repositories, repositories holding no source code (README or
// licence only), and dead links.
package codehost

import (
	"path"
	"sort"
	"strings"
)

// File is one file in a repository.
type File struct {
	Path    string
	Content string
}

// Repo is a hosted repository.
type Repo struct {
	Owner string
	Name  string
	Files []File
}

// FullName returns "owner/name".
func (r *Repo) FullName() string { return r.Owner + "/" + r.Name }

// languageByExt maps file extensions to display languages, linguist
// style. Files outside the map (and documentation/licence files) do not
// count as source code.
var languageByExt = map[string]string{
	".js":   "JavaScript",
	".mjs":  "JavaScript",
	".py":   "Python",
	".go":   "Go",
	".rb":   "Ruby",
	".java": "Java",
	".ts":   "TypeScript",
	".rs":   "Rust",
	".c":    "C",
	".cpp":  "C++",
	".cs":   "C#",
	".php":  "PHP",
}

// LangStat is one language's share of a repository.
type LangStat struct {
	Language string
	Bytes    int
	Pct      float64
}

// Languages computes linguist-style statistics: bytes of source per
// language, descending. Repositories with no recognizable source return
// nil — the paper's "valid repositories that do not contain any source
// code".
func (r *Repo) Languages() []LangStat {
	bytes := make(map[string]int)
	total := 0
	for _, f := range r.Files {
		lang, ok := languageByExt[strings.ToLower(path.Ext(f.Path))]
		if !ok {
			continue
		}
		bytes[lang] += len(f.Content)
		total += len(f.Content)
	}
	if total == 0 {
		return nil
	}
	out := make([]LangStat, 0, len(bytes))
	for lang, n := range bytes {
		out = append(out, LangStat{Language: lang, Bytes: n, Pct: 100 * float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Language < out[j].Language
	})
	return out
}

// MainLanguage returns the top language, or "" when the repository has
// no source code.
func (r *Repo) MainLanguage() string {
	langs := r.Languages()
	if len(langs) == 0 {
		return ""
	}
	return langs[0].Language
}

// SourceFiles returns the files recognized as source code in a given
// language ("" for any language).
func (r *Repo) SourceFiles(language string) []File {
	var out []File
	for _, f := range r.Files {
		lang, ok := languageByExt[strings.ToLower(path.Ext(f.Path))]
		if !ok {
			continue
		}
		if language == "" || lang == language {
			out = append(out, f)
		}
	}
	return out
}

// Host is the collection of repositories and profiles.
type Host struct {
	repos    map[string]*Repo    // "owner/name"
	profiles map[string][]string // owner -> repo names (public)
}

// NewHost creates an empty host.
func NewHost() *Host {
	return &Host{repos: make(map[string]*Repo), profiles: make(map[string][]string)}
}

// AddRepo registers a repository and lists it on its owner's profile.
func (h *Host) AddRepo(r *Repo) {
	h.repos[r.FullName()] = r
	h.profiles[r.Owner] = append(h.profiles[r.Owner], r.Name)
}

// AddProfile registers a user with no public repositories.
func (h *Host) AddProfile(owner string) {
	if _, ok := h.profiles[owner]; !ok {
		h.profiles[owner] = nil
	}
}

// Repo looks a repository up by "owner/name".
func (h *Host) Repo(fullName string) (*Repo, bool) {
	r, ok := h.repos[fullName]
	return r, ok
}

// Profile returns a user's public repository names and whether the user
// exists.
func (h *Host) Profile(owner string) ([]string, bool) {
	names, ok := h.profiles[owner]
	return names, ok
}

// Len returns the number of hosted repositories.
func (h *Host) Len() int { return len(h.repos) }
