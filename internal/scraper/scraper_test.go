package scraper

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/listing"
	"repro/internal/permissions"
	"repro/internal/synth"
)

// crawlStrict preserves the deleted Crawl wrapper's contract for these
// tests: background context, first failed bot aborts the crawl.
func crawlStrict(c *Client, cfg Config) ([]*Record, error) {
	cfg.Strict = true
	res, err := CrawlResultContext(context.Background(), c, cfg)
	if err != nil {
		return nil, err
	}
	return res.Records, nil
}

// startSite spins up a listing server over a synthetic population.
func startSite(t *testing.T, n int, cfg listing.AntiScrape) (*listing.Server, *synth.Ecosystem) {
	t.Helper()
	eco := synth.Generate(synth.Config{Seed: 99, NumBots: n})
	dir := listing.NewDirectory(eco.Bots)
	srv, err := listing.NewServer(dir, cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, eco
}

func newTestClient(t *testing.T, base string, solver Solver) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{BaseURL: base, Timeout: 500 * time.Millisecond, Solver: solver})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestListBotIDsPagination(t *testing.T) {
	srv, eco := startSite(t, 60, listing.AntiScrape{})
	c := newTestClient(t, srv.BaseURL(), nil)
	ids, err := ListBotIDsContext(context.Background(), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(eco.Bots) {
		t.Fatalf("listed %d ids, want %d", len(ids), len(eco.Bots))
	}
	seen := make(map[int]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	// MaxPages bound is respected.
	capped, err := ListBotIDsContext(context.Background(), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != listing.PageSize {
		t.Errorf("capped crawl = %d ids, want %d", len(capped), listing.PageSize)
	}
}

func TestScrapeBotExtractsAttributes(t *testing.T) {
	srv, eco := startSite(t, 40, listing.AntiScrape{})
	c := newTestClient(t, srv.BaseURL(), nil)
	var target *listing.Bot
	for _, b := range eco.Bots {
		if b.InviteHealth == listing.InviteOK && b.HasWebsite {
			target = b
			break
		}
	}
	if target == nil {
		t.Skip("no suitable bot in this seed")
	}
	rec, err := ScrapeBotContext(context.Background(), c, target.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != target.Name {
		t.Errorf("name = %q, want %q", rec.Name, target.Name)
	}
	if !rec.PermsValid || rec.Perms != target.Perms {
		t.Errorf("perms = %v %s, want %s", rec.PermsValid, rec.Perms, target.Perms)
	}
	if rec.GuildCount != target.GuildCount || rec.Votes != target.Votes {
		t.Errorf("counts = %d/%d, want %d/%d", rec.GuildCount, rec.Votes, target.GuildCount, target.Votes)
	}
	if len(rec.Tags) != len(target.Tags) {
		t.Errorf("tags = %v, want %v", rec.Tags, target.Tags)
	}
	if len(rec.Developers) != 1 || rec.Developers[0] != target.Developers[0] {
		t.Errorf("developers = %v, want %v", rec.Developers, target.Developers)
	}
	if rec.GitHubURL != target.GitHubURL {
		t.Errorf("github = %q, want %q", rec.GitHubURL, target.GitHubURL)
	}
	if !rec.HasWebsite {
		t.Error("website link missed")
	}
}

func TestInvalidInviteTaxonomy(t *testing.T) {
	srv, eco := startSite(t, 120, listing.AntiScrape{SlowRedirectDelay: 2 * time.Second})
	c := newTestClient(t, srv.BaseURL(), nil) // 500ms timeout < 2s delay
	var broken, removed, slow *listing.Bot
	for _, b := range eco.Bots {
		switch b.InviteHealth {
		case listing.InviteBroken:
			if broken == nil {
				broken = b
			}
		case listing.InviteRemoved:
			if removed == nil {
				removed = b
			}
		case listing.InviteSlow:
			if slow == nil {
				slow = b
			}
		}
	}
	if broken == nil || removed == nil || slow == nil {
		t.Fatalf("seed lacks invalid bots: %v %v %v", broken, removed, slow)
	}
	cases := []struct {
		bot  *listing.Bot
		want InvalidReason
	}{
		{broken, InvalidBrokenLink},
		{removed, InvalidRemoved},
		{slow, InvalidTimeout},
	}
	for _, tc := range cases {
		rec, err := ScrapeBotContext(context.Background(), c, tc.bot.ID, 1)
		if err != nil {
			t.Fatalf("bot %d (%s): %v", tc.bot.ID, tc.bot.InviteHealth, err)
		}
		if rec.PermsValid {
			t.Errorf("bot %d (%s): perms unexpectedly valid", tc.bot.ID, tc.bot.InviteHealth)
		}
		if rec.InvalidReason != tc.want {
			t.Errorf("bot %d (%s): reason = %q, want %q", tc.bot.ID, tc.bot.InviteHealth, rec.InvalidReason, tc.want)
		}
	}
}

func TestPolicyScraping(t *testing.T) {
	srv, eco := startSite(t, 400, listing.AntiScrape{})
	c := newTestClient(t, srv.BaseURL(), nil)
	var live, dead *listing.Bot
	for _, b := range eco.Bots {
		if b.HasPolicyLink && !b.PolicyDead && live == nil {
			live = b
		}
		if b.HasPolicyLink && b.PolicyDead && dead == nil {
			dead = b
		}
	}
	if live == nil {
		t.Fatal("seed lacks a live policy")
	}
	rec, err := ScrapeBotContext(context.Background(), c, live.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.PolicyLinkFound || rec.PolicyLinkDead {
		t.Errorf("live policy flags = %v/%v", rec.PolicyLinkFound, rec.PolicyLinkDead)
	}
	if rec.PolicyText == "" {
		t.Error("policy text empty")
	}
	if dead != nil {
		rec2, err := ScrapeBotContext(context.Background(), c, dead.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rec2.PolicyLinkFound || !rec2.PolicyLinkDead || rec2.PolicyText != "" {
			t.Errorf("dead policy flags = %+v", rec2)
		}
	}
}

func TestFlakyDetailRetries(t *testing.T) {
	srv, eco := startSite(t, 80, listing.AntiScrape{FlakyEvery: 2})
	c := newTestClient(t, srv.BaseURL(), nil)
	recs, err := crawlStrict(c, Config{Workers: 4, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(eco.Bots) {
		t.Fatalf("crawled %d, want %d", len(recs), len(eco.Bots))
	}
	if c.Stats().Retries == 0 {
		t.Error("expected retries against a flaky site")
	}
	// Despite flakiness, every OK bot's permissions must be captured —
	// retrying is what §3 prescribes.
	for i, b := range eco.Bots {
		_ = i
		if b.InviteHealth != listing.InviteOK {
			continue
		}
		var rec *Record
		for _, r := range recs {
			if r.ID == b.ID {
				rec = r
			}
		}
		if rec == nil || !rec.PermsValid {
			t.Fatalf("bot %d lost to flakiness", b.ID)
		}
	}
}

func TestCaptchaFlow(t *testing.T) {
	srv, _ := startSite(t, 30, listing.AntiScrape{CaptchaEvery: 5})
	solver := &TwoCaptchaSim{CostPerSolve: 299}
	c := newTestClient(t, srv.BaseURL(), solver)
	recs, err := crawlStrict(c, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 30 {
		t.Fatalf("crawled %d records", len(recs))
	}
	if solver.Solved() == 0 {
		t.Error("no captchas solved despite CaptchaEvery=5")
	}
	if solver.Cost() != solver.Solved()*299 {
		t.Errorf("cost accounting wrong: %d for %d solves", solver.Cost(), solver.Solved())
	}
	if c.Stats().CaptchasSolved == 0 {
		t.Error("client did not record captcha solves")
	}
}

func TestCaptchaWithoutSolverFails(t *testing.T) {
	srv, _ := startSite(t, 30, listing.AntiScrape{CaptchaEvery: 3})
	c := newTestClient(t, srv.BaseURL(), nil)
	_, err := crawlStrict(c, Config{Workers: 1})
	if err == nil {
		t.Fatal("crawl should fail when captchas cannot be solved")
	}
	c2 := newTestClient(t, srv.BaseURL(), FailingSolver{})
	if _, err := crawlStrict(c2, Config{Workers: 1}); err == nil {
		t.Fatal("crawl should fail when the solver errors")
	}
}

func TestRateLimitBackoff(t *testing.T) {
	srv, _ := startSite(t, 30, listing.AntiScrape{RequestsPerSecond: 50, Burst: 5})
	c := newTestClient(t, srv.BaseURL(), nil)
	recs, err := crawlStrict(c, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 30 {
		t.Fatalf("crawled %d records", len(recs))
	}
	if c.Stats().Throttled == 0 {
		t.Error("expected 429s under an aggressive crawl")
	}
}

func TestSelfPacing(t *testing.T) {
	srv, _ := startSite(t, 5, listing.AntiScrape{})
	c, err := NewClient(ClientConfig{BaseURL: srv.BaseURL(), Timeout: time.Second, MinInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.GetContext(context.Background(), "/bots?page=1"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 4*30*time.Millisecond {
		t.Errorf("5 paced requests took %v, want >= %v", elapsed, 4*30*time.Millisecond)
	}
}

func TestPermissionDistribution(t *testing.T) {
	recs := []*Record{
		{ID: 1, PermsValid: true, Perms: permissions.SendMessages | permissions.Administrator},
		{ID: 2, PermsValid: true, Perms: permissions.SendMessages},
		{ID: 3, PermsValid: true, Perms: permissions.ViewChannel},
		{ID: 4, PermsValid: false, Perms: permissions.BanMembers}, // excluded
		nil, // tolerated
	}
	dist := PermissionDistribution(recs)
	if len(dist) != 3 {
		t.Fatalf("distribution size = %d", len(dist))
	}
	if dist[0].Perm != permissions.SendMessages || dist[0].Count != 2 {
		t.Errorf("top = %+v", dist[0])
	}
	if dist[0].Pct < 66.5 || dist[0].Pct > 66.8 {
		t.Errorf("top pct = %f", dist[0].Pct)
	}
}

func TestErrGoneOnMissingBot(t *testing.T) {
	srv, _ := startSite(t, 5, listing.AntiScrape{})
	c := newTestClient(t, srv.BaseURL(), nil)
	_, err := ScrapeBotContext(context.Background(), c, 424242, 1)
	if !errors.Is(err, ErrGone) {
		t.Errorf("missing bot err = %v", err)
	}
}
