// Package scraper implements the paper's data-collection stage (§3): a
// crawler over the chatbot listing site that extracts every bot's
// attributes, survives the site's anti-scraping measures — rate limits,
// captcha challenges, flaky elements, slow redirects — and emits one
// record per bot, including the decoded permission set from the invite
// consent page and the privacy policy text from the bot's website.
package scraper

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Solver answers captcha challenges. The paper used the paid 2Captcha
// service "due to its affordability and quick solving time".
type Solver interface {
	// Solve returns the answer text for a challenge prompt.
	Solve(challenge string) (string, error)
}

// ContextSolver is an optional extension: solvers whose waits (network
// round-trips, simulated solving latency) should abort on cancellation
// implement it; SolveContext prefers it when present.
type ContextSolver interface {
	Solver
	// SolveContext is Solve with cancellation.
	SolveContext(ctx context.Context, challenge string) (string, error)
}

// SolveContext answers a challenge through s, using its context-aware
// path when the solver provides one.
func SolveContext(ctx context.Context, s Solver, challenge string) (string, error) {
	if cs, ok := s.(ContextSolver); ok {
		return cs.SolveContext(ctx, challenge)
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return s.Solve(challenge)
}

// ErrUnsolvable is returned when a solver cannot parse the challenge.
var ErrUnsolvable = errors.New("scraper: unsolvable captcha challenge")

// TwoCaptchaSim simulates a paid solving service: it parses the
// arithmetic prompt, waits a configurable latency (their "quick solving
// time"), and accrues per-solve cost so experiments can report spend.
type TwoCaptchaSim struct {
	// Latency per solve; defaults to 0 for tests.
	Latency time.Duration
	// CostPerSolve in millicents (2Captcha charges ~$2.99/1000).
	CostPerSolve int

	mu     sync.Mutex
	solved int
	cost   int
}

var challengePattern = regexp.MustCompile(`what is (\d+) plus (\d+)`)

// Solve implements Solver.
func (s *TwoCaptchaSim) Solve(challenge string) (string, error) {
	return s.SolveContext(context.Background(), challenge)
}

// SolveContext implements ContextSolver: the simulated solving latency
// aborts as soon as ctx is cancelled.
func (s *TwoCaptchaSim) SolveContext(ctx context.Context, challenge string) (string, error) {
	m := challengePattern.FindStringSubmatch(challenge)
	if m == nil {
		return "", ErrUnsolvable
	}
	if err := obs.SleepContext(ctx, s.Latency); err != nil {
		return "", err
	}
	a, _ := strconv.Atoi(m[1])
	b, _ := strconv.Atoi(m[2])
	s.mu.Lock()
	s.solved++
	s.cost += s.CostPerSolve
	s.mu.Unlock()
	return strconv.Itoa(a + b), nil
}

// Solved returns how many challenges were answered.
func (s *TwoCaptchaSim) Solved() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solved
}

// Cost returns the accrued spend in millicents.
func (s *TwoCaptchaSim) Cost() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cost
}

// FailingSolver always errors — used to test crawler behaviour when the
// solving service is down.
type FailingSolver struct{}

// Solve implements Solver.
func (FailingSolver) Solve(string) (string, error) {
	return "", fmt.Errorf("scraper: solver unavailable")
}
