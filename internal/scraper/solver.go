// Package scraper implements the paper's data-collection stage (§3): a
// crawler over the chatbot listing site that extracts every bot's
// attributes, survives the site's anti-scraping measures — rate limits,
// captcha challenges, flaky elements, slow redirects — and emits one
// record per bot, including the decoded permission set from the invite
// consent page and the privacy policy text from the bot's website.
package scraper

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"sync"
	"time"
)

// Solver answers captcha challenges. The paper used the paid 2Captcha
// service "due to its affordability and quick solving time".
type Solver interface {
	// Solve returns the answer text for a challenge prompt.
	Solve(challenge string) (string, error)
}

// ErrUnsolvable is returned when a solver cannot parse the challenge.
var ErrUnsolvable = errors.New("scraper: unsolvable captcha challenge")

// TwoCaptchaSim simulates a paid solving service: it parses the
// arithmetic prompt, waits a configurable latency (their "quick solving
// time"), and accrues per-solve cost so experiments can report spend.
type TwoCaptchaSim struct {
	// Latency per solve; defaults to 0 for tests.
	Latency time.Duration
	// CostPerSolve in millicents (2Captcha charges ~$2.99/1000).
	CostPerSolve int

	mu     sync.Mutex
	solved int
	cost   int
}

var challengePattern = regexp.MustCompile(`what is (\d+) plus (\d+)`)

// Solve implements Solver.
func (s *TwoCaptchaSim) Solve(challenge string) (string, error) {
	m := challengePattern.FindStringSubmatch(challenge)
	if m == nil {
		return "", ErrUnsolvable
	}
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	a, _ := strconv.Atoi(m[1])
	b, _ := strconv.Atoi(m[2])
	s.mu.Lock()
	s.solved++
	s.cost += s.CostPerSolve
	s.mu.Unlock()
	return strconv.Itoa(a + b), nil
}

// Solved returns how many challenges were answered.
func (s *TwoCaptchaSim) Solved() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solved
}

// Cost returns the accrued spend in millicents.
func (s *TwoCaptchaSim) Cost() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cost
}

// FailingSolver always errors — used to test crawler behaviour when the
// solving service is down.
type FailingSolver struct{}

// Solve implements Solver.
func (FailingSolver) Solve(string) (string, error) {
	return "", fmt.Errorf("scraper: solver unavailable")
}
