package scraper

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/htmlparse"
	"repro/internal/permissions"
)

// InvalidReason classifies why a bot's permissions could not be read —
// the paper's three causes for the 26% invalid share.
type InvalidReason string

// Invalid reasons.
const (
	InvalidNone        InvalidReason = ""
	InvalidBrokenLink  InvalidReason = "invalid-invite-link"
	InvalidRemoved     InvalidReason = "removed"
	InvalidTimeout     InvalidReason = "slow-redirect-timeout"
	InvalidMissingLink InvalidReason = "no-invite-link"
	InvalidBadValue    InvalidReason = "undecodable-permissions"
)

// Record is the scraper's output for one listed bot: the full attribute
// set §4.2 extracts.
type Record struct {
	ID          int
	Name        string
	Tags        []string
	Description string
	GuildCount  int
	Votes       int
	Prefix      string
	Commands    []string
	Developers  []string

	HasWebsite bool
	GitHubURL  string

	PermsValid    bool
	Perms         permissions.Permission
	InvalidReason InvalidReason

	PolicyLinkFound bool
	PolicyLinkDead  bool
	PolicyText      string
}

// Config tunes a crawl.
type Config struct {
	// Workers is the fetch parallelism (default 4).
	Workers int
	// Retries re-attempts detail pages whose expected elements are
	// missing (§3 iv: react to NoSuchElementException). Default 2.
	Retries int
	// MaxPages bounds listing pagination; 0 means all pages.
	MaxPages int
}

// Crawl walks the whole listing and returns one record per bot,
// ordered as listed.
func Crawl(c *Client, cfg Config) ([]*Record, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	ids, err := ListBotIDs(c, cfg.MaxPages)
	if err != nil {
		return nil, err
	}
	records := make([]*Record, len(ids))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	var firstErr error
	var errMu sync.Mutex
	for i, id := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(i, id int) {
			defer wg.Done()
			defer func() { <-sem }()
			rec, err := ScrapeBot(c, id, cfg.Retries)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("bot %d: %w", id, err)
				}
				errMu.Unlock()
				return
			}
			records[i] = rec
		}(i, id)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return records, nil
}

// ListBotIDs pages through the "top chatbot" list collecting bot IDs in
// listing order.
func ListBotIDs(c *Client, maxPages int) ([]int, error) {
	var ids []int
	for page := 1; ; page++ {
		if maxPages > 0 && page > maxPages {
			break
		}
		doc, err := c.Get(fmt.Sprintf("/bots?page=%d", page))
		if err != nil {
			return nil, fmt.Errorf("scraper: list page %d: %w", page, err)
		}
		cards := doc.Select("li.bot-card")
		if len(cards) == 0 {
			break
		}
		for _, card := range cards {
			raw, _ := card.Attr("data-bot-id")
			id, err := strconv.Atoi(raw)
			if err != nil {
				continue // malformed card; skip like a robust crawler
			}
			ids = append(ids, id)
		}
		if doc.ByID("next-page") == nil {
			break
		}
	}
	return ids, nil
}

// ScrapeBot fetches one bot's detail page, its invite consent page, and
// its website policy, assembling the full record.
func ScrapeBot(c *Client, id, retries int) (*Record, error) {
	var doc *htmlparse.Node
	var inviteHref string
	var err error
	// Detail pages are occasionally flaky: the invite element vanishes
	// on a render. Retry, as §3 prescribes.
	for attempt := 0; attempt <= retries; attempt++ {
		doc, err = c.Get(fmt.Sprintf("/bot/%d", id))
		if err != nil {
			return nil, err
		}
		if a := doc.SelectFirst("a.invite"); a != nil {
			inviteHref, _ = a.Attr("href")
			break
		}
		if attempt < retries {
			c.count(func(s *Stats) { s.Retries++ })
		}
	}

	rec := &Record{ID: id}
	if n := doc.SelectFirst("h1.bot-name"); n != nil {
		rec.Name = n.Text()
	}
	if n := doc.SelectFirst("p.description"); n != nil {
		rec.Description = n.Text()
	}
	if n := doc.SelectFirst("span.guild-count"); n != nil {
		rec.GuildCount, _ = strconv.Atoi(n.Text())
	}
	if n := doc.SelectFirst("span.vote-count"); n != nil {
		rec.Votes, _ = strconv.Atoi(n.Text())
	}
	if n := doc.SelectFirst("span.prefix"); n != nil {
		rec.Prefix = n.Text()
	}
	for _, n := range doc.Select("li.tag") {
		rec.Tags = append(rec.Tags, n.Text())
	}
	for _, n := range doc.Select("li.developer") {
		rec.Developers = append(rec.Developers, n.Text())
	}
	for _, n := range doc.Select("li.command") {
		rec.Commands = append(rec.Commands, n.Text())
	}
	if n := doc.SelectFirst("a.github"); n != nil {
		rec.GitHubURL, _ = n.Attr("href")
	}
	rec.HasWebsite = doc.SelectFirst("a.website") != nil

	scrapeInvite(c, rec, inviteHref)
	if rec.HasWebsite {
		scrapePolicy(c, rec, id)
	}
	return rec, nil
}

// scrapeInvite resolves the consent page and decodes the permission
// value, mapping each failure mode to its invalid reason.
func scrapeInvite(c *Client, rec *Record, href string) {
	if href == "" {
		rec.InvalidReason = InvalidMissingLink
		return
	}
	doc, err := c.Get(href)
	switch {
	case err == nil:
	case errors.Is(err, ErrTimeout):
		rec.InvalidReason = InvalidTimeout
		return
	case errors.Is(err, ErrGone):
		// 410 means removed; 404/400 means a mangled invite URL.
		if strings.Contains(err.Error(), "(410)") {
			rec.InvalidReason = InvalidRemoved
		} else {
			rec.InvalidReason = InvalidBrokenLink
		}
		return
	default:
		rec.InvalidReason = InvalidBrokenLink
		return
	}
	val := doc.ByID("perm-value")
	if val == nil {
		rec.InvalidReason = InvalidBadValue
		return
	}
	perms, err := permissions.ParseValue(val.Text())
	if err != nil || !perms.Defined() {
		rec.InvalidReason = InvalidBadValue
		return
	}
	rec.Perms = perms
	rec.PermsValid = true
}

// scrapePolicy visits the bot's website, follows its privacy-policy
// link when present, and captures the policy text.
func scrapePolicy(c *Client, rec *Record, id int) {
	site, err := c.Get(fmt.Sprintf("/site/%d", id))
	if err != nil {
		return // website advertised but unreachable: no policy found
	}
	link := site.ByID("privacy-link")
	if link == nil {
		return
	}
	rec.PolicyLinkFound = true
	href, _ := link.Attr("href")
	policy, err := c.Get(href)
	if err != nil {
		rec.PolicyLinkDead = true
		return
	}
	if pre := policy.SelectFirst("#privacy-policy pre"); pre != nil {
		rec.PolicyText = pre.Text()
	} else if div := policy.ByID("privacy-policy"); div != nil {
		rec.PolicyText = div.Text()
	} else {
		rec.PolicyLinkDead = true
	}
}

// PermissionDistribution tallies, over the valid records, what fraction
// requests each permission — the Figure 3 series, descending.
type PermissionShare struct {
	Perm  permissions.Permission
	Count int
	Pct   float64
}

// PermissionDistribution computes Figure 3 from scraped records.
func PermissionDistribution(records []*Record) []PermissionShare {
	valid := 0
	counts := make(map[permissions.Permission]int)
	for _, r := range records {
		if r == nil || !r.PermsValid {
			continue
		}
		valid++
		for _, bit := range r.Perms.Split() {
			counts[bit]++
		}
	}
	out := make([]PermissionShare, 0, len(counts))
	for p, n := range counts {
		out = append(out, PermissionShare{Perm: p, Count: n, Pct: 100 * float64(n) / float64(valid)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Perm < out[j].Perm
	})
	return out
}

// resolveRef joins a possibly-relative href against a base — exported
// via helper for the code-analysis stage, which receives host-relative
// GitHub links.
func resolveRef(base *url.URL, ref string) string {
	u, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return base.ResolveReference(u).String()
}
