package scraper

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/htmlparse"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/trace"
	"repro/internal/permissions"
)

// InvalidReason classifies why a bot's permissions could not be read —
// the paper's three causes for the 26% invalid share.
type InvalidReason string

// Invalid reasons.
const (
	InvalidNone        InvalidReason = ""
	InvalidBrokenLink  InvalidReason = "invalid-invite-link"
	InvalidRemoved     InvalidReason = "removed"
	InvalidTimeout     InvalidReason = "slow-redirect-timeout"
	InvalidMissingLink InvalidReason = "no-invite-link"
	InvalidBadValue    InvalidReason = "undecodable-permissions"
)

// Record is the scraper's output for one listed bot: the full attribute
// set §4.2 extracts.
type Record struct {
	ID          int
	Name        string
	Tags        []string
	Description string
	GuildCount  int
	Votes       int
	Prefix      string
	Commands    []string
	Developers  []string

	HasWebsite bool
	GitHubURL  string

	PermsValid    bool
	Perms         permissions.Permission
	InvalidReason InvalidReason

	PolicyLinkFound bool
	PolicyLinkDead  bool
	PolicyText      string

	// Incomplete marks a record whose detail page never produced every
	// expected element (e.g. the invite link did not render after
	// exhausting retries, or the policy fetch kept failing). The bot was
	// scraped, but downstream stages should not treat absences in this
	// record as evidence.
	Incomplete bool
}

// Config tunes a crawl.
type Config struct {
	// Workers is the fetch parallelism (default 4).
	Workers int
	// Retries re-attempts detail pages whose expected elements are
	// missing (§3 iv: react to NoSuchElementException). Default 2.
	Retries int
	// MaxPages bounds listing pagination; 0 means all pages.
	MaxPages int
	// Strict restores the pre-quarantine behavior: the first failed bot
	// aborts the whole crawl with an error instead of being skipped.
	Strict bool
	// Resume, when set, replays settled outcomes from a checkpoint: the
	// recorded listing is reused instead of re-paginating, and settled
	// bots are skipped idempotently (journaled as work_skipped) with
	// their prior outcome copied into the result.
	Resume *ResumeState
	// OnSettled, when set, observes each freshly settled bot — the
	// checkpointer's feed. rec is nil when the bot was quarantined
	// (qerr set). Not called for resumed skips; the checkpoint already
	// holds those. May be called concurrently from worker goroutines.
	OnSettled func(id int, rec *Record, qerr error)
	// OnListed observes the discovered listing before per-bot fetches
	// begin, so a checkpoint can persist the work plan itself.
	OnListed func(ids []int)
}

// ResumeState carries a checkpoint's settled crawl outcomes back into
// a resumed run.
type ResumeState struct {
	// IDs is the listing discovered by the interrupted run; when
	// non-empty the crawl skips pagination entirely and reuses it.
	IDs []int
	// Records maps bot ID → settled record.
	Records map[int]*Record
	// Quarantined maps bot ID → the error that quarantined it.
	Quarantined map[int]error
}

// Quarantined records one bot abandoned after its fetches exhausted
// their retries — counted and skipped rather than fatal.
type Quarantined struct {
	BotID int
	Err   error
}

// CrawlResult is the degradation-aware crawl output: the records that
// were scraped, the bots that were quarantined, and the listing error
// (if pagination itself ended early). A crawl under fault pressure
// returns all three instead of collapsing to a single error.
type CrawlResult struct {
	// IDs is the full listing in discovery order — the crawl's work
	// plan, persisted by checkpoints so a resumed run need not
	// re-paginate.
	IDs []int
	// Records holds one record per successfully scraped bot, in listing
	// order.
	Records []*Record
	// Quarantined lists bots whose scrape failed after retries, in
	// listing order.
	Quarantined []Quarantined
	// ListErr is the pagination failure that ended ID discovery early,
	// nil when every page was walked.
	ListErr error
}

// Degraded reports whether the crawl lost anything.
func (r *CrawlResult) Degraded() bool {
	return r.ListErr != nil || len(r.Quarantined) > 0
}

// Crawler exposes the crawl's per-bot machinery to caller-scheduled
// executors: List discovers the work plan and Settle carries one bot
// through scrape → quarantine → journal exactly as CrawlResultContext's
// own workers do. The sharded pipeline drives a Crawler directly so the
// scheduler, not this package, decides which bot runs when; Settle is
// safe for concurrent use.
type Crawler struct {
	Client *Client
	Cfg    Config
}

// SettledBot is one bot's crawl outcome.
type SettledBot struct {
	// Rec is the scraped record, nil when the bot was quarantined.
	Rec *Record
	// Quarantine is the error that set the bot aside, nil on success.
	Quarantine error
	// Resumed marks an outcome replayed from Cfg.Resume rather than
	// freshly scraped — already persisted, so not re-checkpointed.
	Resumed bool
}

// NewCrawler builds a Crawler with cfg's worker/retry defaults applied.
func NewCrawler(c *Client, cfg Config) *Crawler {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	return &Crawler{Client: c, Cfg: cfg}
}

// List returns the crawl's work plan: the resumed listing when the
// checkpoint recorded one, otherwise a fresh pagination. listErr
// carries a lenient-mode pagination failure (the listing is partial);
// err is fatal (strict mode or cancellation).
func (cr *Crawler) List(ctx context.Context) (ids []int, listErr, err error) {
	if r := cr.Cfg.Resume; r != nil && len(r.IDs) > 0 {
		// The interrupted run already paid for pagination; reuse its
		// listing so the resumed run sees the identical work plan.
		ids = r.IDs
	} else {
		ids, listErr = ListBotIDsContext(ctx, cr.Client, cr.Cfg.MaxPages)
		if listErr != nil {
			if cr.Cfg.Strict || errors.Is(listErr, context.Canceled) || errors.Is(listErr, context.DeadlineExceeded) {
				return nil, nil, listErr
			}
		}
	}
	// A partial listing (pagination died mid-walk) is not a durable
	// work plan: only a complete discovery is reported, so a resumed
	// run re-paginates rather than inheriting the truncation.
	if cr.Cfg.OnListed != nil && listErr == nil {
		cr.Cfg.OnListed(ids)
	}
	return ids, listErr, nil
}

// resumed replays a checkpointed outcome for id when one exists.
// ok=false means the bot is fresh work; err is fatal (a strict run hit
// a checkpointed quarantine).
func (cr *Crawler) resumed(ctx context.Context, id int) (out SettledBot, ok bool, err error) {
	r := cr.Cfg.Resume
	if r == nil {
		return SettledBot{}, false, nil
	}
	if rec, found := r.Records[id]; found {
		journal.Emit(journal.WithBot(ctx, id, rec.Name), "scraper",
			journal.KindWorkSkipped, map[string]any{
				"stage":  "collect",
				"reason": "settled in checkpoint",
			})
		return SettledBot{Rec: rec, Resumed: true}, true, nil
	}
	if qerr, found := r.Quarantined[id]; found {
		if cr.Cfg.Strict {
			return SettledBot{}, false, fmt.Errorf("bot %d: %w", id, qerr)
		}
		journal.Emit(journal.WithBot(ctx, id, ""), "scraper",
			journal.KindWorkSkipped, map[string]any{
				"stage":  "collect",
				"reason": "quarantined in checkpoint",
			})
		return SettledBot{Quarantine: qerr, Resumed: true}, true, nil
	}
	return SettledBot{}, false, nil
}

// Settle carries one listed bot to its outcome: a checkpointed replay,
// a scraped record, or a quarantine. The returned error is fatal —
// context cancellation, or any scrape failure under Cfg.Strict.
func (cr *Crawler) Settle(ctx context.Context, id int) (SettledBot, error) {
	if out, ok, err := cr.resumed(ctx, id); err != nil || ok {
		return out, err
	}
	botCtx, sp := obs.StartChild(ctx, fmt.Sprintf("bot-%d", id))
	defer sp.End()
	botCtx = journal.WithBot(botCtx, id, "")
	botCtx = trace.WithBot(botCtx, id, "")
	// The bot's display name is only known once the scrape succeeds;
	// the named closer back-fills it onto the collect span.
	botName := ""
	endStage := trace.StartStageNamed(botCtx)
	defer func() { endStage(botName) }()
	rec, err := ScrapeBotContext(botCtx, cr.Client, id, cr.Cfg.Retries)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return SettledBot{}, err
		case cr.Cfg.Strict:
			return SettledBot{}, fmt.Errorf("bot %d: %w", id, err)
		}
		cr.Client.cQuarantined.Inc()
		journal.Emit(botCtx, "scraper", journal.KindBotQuarantined, map[string]any{
			"error": err.Error(),
		})
		if cr.Cfg.OnSettled != nil {
			cr.Cfg.OnSettled(id, nil, err)
		}
		return SettledBot{Quarantine: err}, nil
	}
	botName = rec.Name
	journal.Emit(journal.WithBot(botCtx, id, rec.Name), "scraper",
		journal.KindBotDiscovered, map[string]any{
			"perms_valid":    rec.PermsValid,
			"invalid_reason": string(rec.InvalidReason),
			"votes":          rec.Votes,
			"has_policy":     rec.PolicyLinkFound && !rec.PolicyLinkDead,
		})
	if cr.Cfg.OnSettled != nil {
		cr.Cfg.OnSettled(id, rec, nil)
	}
	return SettledBot{Rec: rec}, nil
}

// CrawlResultContext walks the whole listing and degrades instead of
// aborting: a bot whose scrape fails after exhausting retries is
// quarantined (counted, journaled, skipped), and a pagination failure
// yields the bots discovered so far with ListErr set. The returned
// error is non-nil only for context cancellation — or any failure at
// all when cfg.Strict is set. This is the only crawl entry point; the
// sharded executor schedules the same per-bot path via Crawler.
func CrawlResultContext(ctx context.Context, c *Client, cfg Config) (*CrawlResult, error) {
	cr := NewCrawler(c, cfg)
	cfg = cr.Cfg
	ids, listErr, err := cr.List(ctx)
	if err != nil {
		return nil, err
	}
	records := make([]*Record, len(ids))
	quarantined := make([]error, len(ids))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for i, id := range ids {
		if err := ctx.Err(); err != nil {
			fail(err)
			break
		}
		if out, ok, rerr := cr.resumed(ctx, id); rerr != nil {
			fail(rerr)
			break
		} else if ok {
			records[i], quarantined[i] = out.Rec, out.Quarantine
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i, id int) {
			defer wg.Done()
			defer func() { <-sem }()
			out, err := cr.Settle(ctx, id)
			if err != nil {
				fail(err)
				return
			}
			records[i], quarantined[i] = out.Rec, out.Quarantine
		}(i, id)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res := &CrawlResult{ListErr: listErr, IDs: ids}
	for i, rec := range records {
		switch {
		case rec != nil:
			res.Records = append(res.Records, rec)
		case quarantined[i] != nil:
			res.Quarantined = append(res.Quarantined, Quarantined{BotID: ids[i], Err: quarantined[i]})
		}
	}
	return res, nil
}

// ListBotIDsContext is ListBotIDs with cancellation. On a page-fetch
// failure it returns the IDs discovered so far alongside the error, so
// a degradation-aware caller can crawl the partial listing.
func ListBotIDsContext(ctx context.Context, c *Client, maxPages int) ([]int, error) {
	var ids []int
	for page := 1; ; page++ {
		if maxPages > 0 && page > maxPages {
			break
		}
		pageCtx, sp := obs.StartChild(ctx, fmt.Sprintf("list-page-%d", page))
		doc, err := c.GetContext(pageCtx, fmt.Sprintf("/bots?page=%d", page))
		sp.End()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return ids, err
			}
			return ids, fmt.Errorf("scraper: list page %d: %w", page, err)
		}
		cards := doc.Select("li.bot-card")
		if len(cards) == 0 {
			break
		}
		for _, card := range cards {
			raw, _ := card.Attr("data-bot-id")
			id, err := strconv.Atoi(raw)
			if err != nil {
				continue // malformed card; skip like a robust crawler
			}
			ids = append(ids, id)
		}
		if doc.ByID("next-page") == nil {
			break
		}
	}
	return ids, nil
}

// ScrapeBotContext fetches one bot's detail page, its invite consent
// page, and its website policy, assembling the full record.
func ScrapeBotContext(ctx context.Context, c *Client, id, retries int) (*Record, error) {
	var doc *htmlparse.Node
	var inviteHref string
	var err error
	// Detail pages are occasionally flaky: the invite element vanishes
	// on a render. Retry, as §3 prescribes.
	for attempt := 0; attempt <= retries; attempt++ {
		doc, err = c.GetContext(ctx, fmt.Sprintf("/bot/%d", id))
		if err != nil {
			return nil, err
		}
		if a := doc.SelectFirst("a.invite"); a != nil {
			inviteHref, _ = a.Attr("href")
			break
		}
		if attempt < retries {
			c.countRetry()
		}
	}

	rec := &Record{ID: id}
	if inviteHref == "" {
		// The invite element never rendered across every retry. The
		// record is still assembled, but marked: a permission-less record
		// here reflects our failure to observe, not the bot's listing.
		rec.Incomplete = true
	}
	if n := doc.SelectFirst("h1.bot-name"); n != nil {
		rec.Name = n.Text()
	}
	if n := doc.SelectFirst("p.description"); n != nil {
		rec.Description = n.Text()
	}
	if n := doc.SelectFirst("span.guild-count"); n != nil {
		rec.GuildCount, _ = strconv.Atoi(n.Text())
	}
	if n := doc.SelectFirst("span.vote-count"); n != nil {
		rec.Votes, _ = strconv.Atoi(n.Text())
	}
	if n := doc.SelectFirst("span.prefix"); n != nil {
		rec.Prefix = n.Text()
	}
	for _, n := range doc.Select("li.tag") {
		rec.Tags = append(rec.Tags, n.Text())
	}
	for _, n := range doc.Select("li.developer") {
		rec.Developers = append(rec.Developers, n.Text())
	}
	for _, n := range doc.Select("li.command") {
		rec.Commands = append(rec.Commands, n.Text())
	}
	if n := doc.SelectFirst("a.github"); n != nil {
		rec.GitHubURL, _ = n.Attr("href")
	}
	rec.HasWebsite = doc.SelectFirst("a.website") != nil

	if err := scrapeInvite(ctx, c, rec, inviteHref); err != nil {
		return nil, err
	}
	if rec.HasWebsite {
		if err := scrapePolicy(ctx, c, rec, id); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// scrapeInvite resolves the consent page and decodes the permission
// value, mapping each failure mode to its invalid reason. Only context
// cancellation is returned as an error; site-side failures become
// invalid reasons.
func scrapeInvite(ctx context.Context, c *Client, rec *Record, href string) error {
	if href == "" {
		rec.InvalidReason = InvalidMissingLink
		return nil
	}
	endOp := trace.StartOpDetail(ctx, "invite_redirect", href)
	doc, err := c.GetContext(ctx, href)
	endOp()
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return err
	case isInfraErr(err):
		// The endpoint itself was unreachable after retries — our
		// failure to observe, not a broken invite. Surface it so the
		// caller can quarantine instead of mislabeling the bot invalid.
		return err
	case err == nil:
	case errors.Is(err, ErrTimeout):
		rec.InvalidReason = InvalidTimeout
		return nil
	case errors.Is(err, ErrGone):
		// 410 means removed; 404/400 means a mangled invite URL.
		if strings.Contains(err.Error(), "(410)") {
			rec.InvalidReason = InvalidRemoved
		} else {
			rec.InvalidReason = InvalidBrokenLink
		}
		return nil
	default:
		rec.InvalidReason = InvalidBrokenLink
		return nil
	}
	val := doc.ByID("perm-value")
	if val == nil {
		rec.InvalidReason = InvalidBadValue
		return nil
	}
	perms, err := permissions.ParseValue(val.Text())
	if err != nil || !perms.Defined() {
		rec.InvalidReason = InvalidBadValue
		return nil
	}
	rec.Perms = perms
	rec.PermsValid = true
	return nil
}

// scrapePolicy visits the bot's website, follows its privacy-policy
// link when present, and captures the policy text. Only context
// cancellation is returned as an error; an infrastructure failure
// (retries exhausted) marks the record Incomplete rather than letting
// the absence of a policy read as a finding.
func scrapePolicy(ctx context.Context, c *Client, rec *Record, id int) error {
	site, err := c.GetContext(ctx, fmt.Sprintf("/site/%d", id))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if isInfraErr(err) {
			rec.Incomplete = true
		}
		return nil // website advertised but unreachable: no policy found
	}
	link := site.ByID("privacy-link")
	if link == nil {
		return nil
	}
	rec.PolicyLinkFound = true
	href, _ := link.Attr("href")
	policy, err := c.GetContext(ctx, href)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if isInfraErr(err) {
			rec.Incomplete = true
		}
		rec.PolicyLinkDead = true
		return nil
	}
	if pre := policy.SelectFirst("#privacy-policy pre"); pre != nil {
		rec.PolicyText = pre.Text()
	} else if div := policy.ByID("privacy-policy"); div != nil {
		rec.PolicyText = div.Text()
	} else {
		rec.PolicyLinkDead = true
	}
	return nil
}

// PermissionDistribution tallies, over the valid records, what fraction
// requests each permission — the Figure 3 series, descending.
type PermissionShare struct {
	Perm  permissions.Permission
	Count int
	Pct   float64
}

// PermissionDistribution computes Figure 3 from scraped records.
func PermissionDistribution(records []*Record) []PermissionShare {
	valid := 0
	counts := make(map[permissions.Permission]int)
	for _, r := range records {
		if r == nil || !r.PermsValid {
			continue
		}
		valid++
		for _, bit := range r.Perms.Split() {
			counts[bit]++
		}
	}
	out := make([]PermissionShare, 0, len(counts))
	for p, n := range counts {
		out = append(out, PermissionShare{Perm: p, Count: n, Pct: 100 * float64(n) / float64(valid)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Perm < out[j].Perm
	})
	return out
}

// resolveRef joins a possibly-relative href against a base — exported
// via helper for the code-analysis stage, which receives host-relative
// GitHub links.
func resolveRef(base *url.URL, ref string) string {
	u, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return base.ResolveReference(u).String()
}
