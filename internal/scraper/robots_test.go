package scraper

import (
	"context"
	"testing"
	"time"

	"repro/internal/listing"
	"repro/internal/synth"
)

const sampleRobots = `# listing crawl policy
User-agent: *
Disallow: /oauth/
Allow: /oauth/authorize
Crawl-delay: 0.05

User-agent: EvilScraper
Disallow: /
`

func TestParseRobotsGroups(t *testing.T) {
	pol := ParseRobots(sampleRobots, "ReproCrawler")
	if !pol.Exists {
		t.Fatal("policy should exist")
	}
	if pol.CrawlDelay != 50*time.Millisecond {
		t.Errorf("crawl delay = %v", pol.CrawlDelay)
	}
	cases := map[string]bool{
		"/bots":             true,
		"/bot/5":            true,
		"/oauth/slow/3":     false, // Disallow /oauth/
		"/oauth/authorize":  true,  // longer Allow wins
		"/oauth/authorizeX": true,
	}
	for path, want := range cases {
		if got := pol.Allowed(path); got != want {
			t.Errorf("Allowed(%q) = %v, want %v", path, got, want)
		}
	}
	// The exact-agent group fully blocks EvilScraper.
	evil := ParseRobots(sampleRobots, "EvilScraper/2.0")
	if evil.Allowed("/bots") {
		t.Error("exact-agent disallow ignored")
	}
}

func TestParseRobotsEdgeCases(t *testing.T) {
	empty := ParseRobots("", "X")
	if !empty.Exists || !empty.Allowed("/anything") {
		t.Error("empty robots should allow everything")
	}
	noise := ParseRobots("random text\nDisallow: /orphan\nnot-a-directive\n", "X")
	if !noise.Allowed("/orphan") {
		t.Error("disallow outside a user-agent group should be ignored")
	}
	multi := ParseRobots("User-agent: a\nUser-agent: b\nDisallow: /x\n", "agent-b")
	if multi.Allowed("/x/path") {
		t.Error("stacked user-agent lines should share the group")
	}
	badDelay := ParseRobots("User-agent: *\nCrawl-delay: banana\n", "X")
	if badDelay.CrawlDelay != 0 {
		t.Error("unparsable crawl delay should be ignored")
	}
	missing := RobotsPolicy{}
	if !missing.Allowed("/whatever") {
		t.Error("absent robots.txt should allow everything")
	}
}

func TestLoadRobotsAdoptsCrawlDelay(t *testing.T) {
	eco := synth.Generate(synth.Config{Seed: 42, NumBots: 3})
	srv, err := listing.NewServer(listing.NewDirectory(eco.Bots), listing.AntiScrape{
		RobotsTxt: "User-agent: *\nCrawl-delay: 0.04\nDisallow: /site/\n",
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// The positional shim is gone; ClientConfig is the only constructor.
	c, err := NewClient(ClientConfig{BaseURL: srv.BaseURL(), Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := c.LoadRobots(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Exists || pol.CrawlDelay != 40*time.Millisecond {
		t.Fatalf("policy = %+v", pol)
	}
	if pol.Allowed("/site/1") {
		t.Error("disallowed prefix reported allowed")
	}
	// The client slowed itself to the mandated delay.
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := c.GetContext(context.Background(), "/bots?page=1"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*40*time.Millisecond {
		t.Errorf("3 requests took %v, crawl delay not honoured", elapsed)
	}
}

func TestLoadRobotsAbsent(t *testing.T) {
	eco := synth.Generate(synth.Config{Seed: 42, NumBots: 3})
	srv, err := listing.NewServer(listing.NewDirectory(eco.Bots), listing.AntiScrape{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, _ := NewClient(ClientConfig{BaseURL: srv.BaseURL(), Timeout: time.Second})
	pol, err := c.LoadRobots(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pol.Exists {
		t.Error("absent robots.txt reported as existing")
	}
	if !pol.Allowed("/anything") {
		t.Error("no policy should mean no restrictions")
	}
}
