package scraper

import (
	"testing"
	"time"
)

// TestNewClientLegacyParity pins the deprecated positional constructor
// to the ClientConfig one: both must configure the client identically,
// so callers can migrate without behaviour change.
func TestNewClientLegacyParity(t *testing.T) {
	solver := &TwoCaptchaSim{CostPerSolve: 299}
	const (
		base        = "http://listing.test:8080"
		timeout     = 750 * time.Millisecond
		minInterval = 25 * time.Millisecond
	)

	legacy, err := NewClientLegacy(base, timeout, minInterval, solver)
	if err != nil {
		t.Fatalf("NewClientLegacy: %v", err)
	}
	modern, err := NewClient(ClientConfig{
		BaseURL:     base,
		Timeout:     timeout,
		MinInterval: minInterval,
		Solver:      solver,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	if got, want := legacy.base.String(), modern.base.String(); got != want {
		t.Errorf("base URL: legacy %q, modern %q", got, want)
	}
	if got, want := legacy.http.Timeout, modern.http.Timeout; got != want {
		t.Errorf("http timeout: legacy %v, modern %v", got, want)
	}
	if got, want := legacy.minInterval, modern.minInterval; got != want {
		t.Errorf("min interval: legacy %v, modern %v", got, want)
	}
	if legacy.solver != Solver(solver) || modern.solver != Solver(solver) {
		t.Errorf("solver not passed through: legacy %v, modern %v", legacy.solver, modern.solver)
	}

	// Both route metrics to the same (default) registry, so the counter
	// handles must be the very same objects.
	if legacy.cRequests != modern.cRequests {
		t.Error("request counters differ — legacy client reports to a different registry")
	}
	if legacy.hFetch != modern.hFetch {
		t.Error("fetch histograms differ — legacy client reports to a different registry")
	}

	// Both must reject the same malformed input the same way.
	if _, err := NewClientLegacy("http://bad url\x7f", 0, 0, nil); err == nil {
		t.Error("legacy constructor accepted a malformed base URL")
	}
	if _, err := NewClient(ClientConfig{BaseURL: "http://bad url\x7f"}); err == nil {
		t.Error("modern constructor accepted a malformed base URL")
	}
}
