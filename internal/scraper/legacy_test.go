package scraper

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestClientConfigWiring pins what the deleted positional constructor's
// parity test used to: every ClientConfig field lands on the client,
// defaults apply, and malformed input is rejected — so callers migrated
// off NewClientLegacy keep identical behaviour.
func TestClientConfigWiring(t *testing.T) {
	solver := &TwoCaptchaSim{CostPerSolve: 299}
	const (
		base        = "http://listing.test:8080"
		timeout     = 750 * time.Millisecond
		minInterval = 25 * time.Millisecond
	)

	c, err := NewClient(ClientConfig{
		BaseURL:     base,
		Timeout:     timeout,
		MinInterval: minInterval,
		Solver:      solver,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	if got := c.base.String(); got != base {
		t.Errorf("base URL = %q, want %q", got, base)
	}
	if got := c.http.Timeout; got != timeout {
		t.Errorf("http timeout = %v, want %v", got, timeout)
	}
	if got := c.minInterval; got != minInterval {
		t.Errorf("min interval = %v, want %v", got, minInterval)
	}
	if c.solver != Solver(solver) {
		t.Errorf("solver not passed through: %v", c.solver)
	}
	if c.transportRetries != 3 {
		t.Errorf("transport retries default = %d, want 3", c.transportRetries)
	}

	// Omitting Obs routes metrics to the default registry: two clients
	// built that way must share the very same counter handles.
	c2, err := NewClient(ClientConfig{BaseURL: base})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if c.cRequests != c2.cRequests {
		t.Error("request counters differ — default-registry clients should share counters")
	}
	if c.hFetch != c2.hFetch {
		t.Error("fetch histograms differ — default-registry clients should share histograms")
	}

	// An explicit registry isolates the counters.
	reg := obs.NewRegistry()
	c3, err := NewClient(ClientConfig{BaseURL: base, Obs: reg})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if c3.cRequests == c.cRequests {
		t.Error("explicit-registry client shares counters with the default registry")
	}

	if _, err := NewClient(ClientConfig{BaseURL: "http://bad url\x7f"}); err == nil {
		t.Error("constructor accepted a malformed base URL")
	}
}
