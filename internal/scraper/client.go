package scraper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/htmlparse"
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

// Client is a polite, captcha-capable HTTP fetcher for one target site.
// It self-limits its request rate (§3: "we limit the rate at which we
// generate our requests"), mimics a browser user agent, and reacts to
// challenge pages by calling the solver and retrying. Every wait is
// cancellation-aware: pass a context via the *Context methods to abort
// a crawl mid-backoff.
type Client struct {
	base    *url.URL
	http    *http.Client
	solver  Solver
	session string

	// MinInterval between requests; zero disables self-limiting.
	minInterval time.Duration

	mu      sync.Mutex
	lastReq time.Time
	pass    string
	stats   Stats

	// observability
	cRequests *obs.Counter
	cThrottle *obs.Counter
	cCaptchas *obs.Counter
	cTimeouts *obs.Counter
	cRetries  *obs.Counter
	hFetch    *obs.Histogram
}

// ClientConfig configures a Client — the one-struct replacement for the
// old four-positional-argument constructor.
type ClientConfig struct {
	// BaseURL is the site root every relative ref resolves against.
	BaseURL string
	// Timeout bounds each fetch; zero means no client-side deadline.
	Timeout time.Duration
	// MinInterval spaces successive requests (politeness); zero
	// disables self-limiting.
	MinInterval time.Duration
	// Solver answers captcha challenges; nil fails on captchas.
	Solver Solver
	// Obs receives the client's counters and fetch-latency histogram;
	// nil uses the process-default registry.
	Obs *obs.Registry
}

// Stats counts crawler-side events, the operational numbers a
// measurement paper reports.
type Stats struct {
	Requests       int
	Throttled      int
	CaptchasSolved int
	Timeouts       int
	Retries        int
}

// ErrTimeout marks a fetch that exceeded the client deadline — the
// scraper's TimeoutException.
var ErrTimeout = errors.New("scraper: request timed out")

// ErrGone marks 404/410 responses.
var ErrGone = errors.New("scraper: resource gone")

// errStaleChallenge marks a captcha answer for a challenge another
// worker already cleared; the request is simply retried.
var errStaleChallenge = errors.New("scraper: stale captcha challenge")

// NewClient builds a client from a ClientConfig.
func NewClient(cfg ClientConfig) (*Client, error) {
	u, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("scraper: bad base url: %w", err)
	}
	reg := obs.Or(cfg.Obs)
	return &Client{
		base:        u,
		http:        &http.Client{Timeout: cfg.Timeout},
		solver:      cfg.Solver,
		minInterval: cfg.MinInterval,
		session:     fmt.Sprintf("s%d", time.Now().UnixNano()),
		cRequests:   reg.Counter("scraper_requests_total"),
		cThrottle:   reg.Counter("scraper_throttled_total"),
		cCaptchas:   reg.Counter("scraper_captcha_solves_total"),
		cTimeouts:   reg.Counter("scraper_timeouts_total"),
		cRetries:    reg.Counter("scraper_retries_total"),
		hFetch:      reg.Histogram("scraper_fetch_seconds"),
	}, nil
}

// NewClientLegacy builds a client from the pre-ClientConfig positional
// arguments.
//
// Deprecated: use NewClient with a ClientConfig.
func NewClientLegacy(baseURL string, timeout, minInterval time.Duration, solver Solver) (*Client, error) {
	return NewClient(ClientConfig{
		BaseURL:     baseURL,
		Timeout:     timeout,
		MinInterval: minInterval,
		Solver:      solver,
	})
}

// Stats returns a copy of the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// pace enforces the politeness interval, aborting early when ctx is
// cancelled.
func (c *Client) pace(ctx context.Context) error {
	c.mu.Lock()
	interval := c.minInterval
	if interval <= 0 {
		c.mu.Unlock()
		return ctx.Err()
	}
	wait := interval - time.Since(c.lastReq)
	if wait > 0 {
		c.lastReq = c.lastReq.Add(interval)
	} else {
		c.lastReq = time.Now()
	}
	c.mu.Unlock()
	if wait > 0 {
		return obs.SleepContext(ctx, wait)
	}
	return ctx.Err()
}

// Get fetches a path (or absolute URL) and parses the response body as
// HTML, transparently solving captchas and backing off on rate limits.
func (c *Client) Get(ref string) (*htmlparse.Node, error) {
	return c.GetContext(context.Background(), ref)
}

// GetContext is Get with cancellation.
func (c *Client) GetContext(ctx context.Context, ref string) (*htmlparse.Node, error) {
	body, err := c.GetRawContext(ctx, ref)
	if err != nil {
		return nil, err
	}
	return htmlparse.Parse(body), nil
}

// GetRaw fetches a path (or absolute URL) and returns the body
// verbatim — for raw source files, which must not round-trip through
// the HTML parser.
func (c *Client) GetRaw(ref string) (string, error) {
	return c.GetRawContext(context.Background(), ref)
}

// GetRawContext is GetRaw with cancellation: every retry backoff and
// the request itself abort as soon as ctx is done.
func (c *Client) GetRawContext(ctx context.Context, ref string) (string, error) {
	const maxAttempts = 8 // non-throttle retries (captcha races etc.)
	throttleBackoff := 40 * time.Millisecond
	throttleBudget := 60 // separate, generous: 429s are the site pacing us
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := c.pace(ctx); err != nil {
			return "", err
		}
		req, err := c.newRequest(ctx, ref)
		if err != nil {
			return "", err
		}
		c.mu.Lock()
		c.stats.Requests++
		if c.pass != "" {
			req.Header.Set("X-Captcha-Pass", c.pass)
			c.pass = ""
		}
		c.mu.Unlock()
		c.cRequests.Inc()

		fetchStart := time.Now()
		resp, err := c.http.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return "", ctx.Err()
			}
			if isTimeout(err) {
				c.count(func(s *Stats) { s.Timeouts++ })
				c.cTimeouts.Inc()
				return "", fmt.Errorf("%w: %s", ErrTimeout, ref)
			}
			return "", fmt.Errorf("scraper: get %s: %w", ref, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		c.hFetch.Observe(time.Since(fetchStart))
		if err != nil {
			if ctx.Err() != nil {
				return "", ctx.Err()
			}
			if isTimeout(err) {
				c.count(func(s *Stats) { s.Timeouts++ })
				c.cTimeouts.Inc()
				return "", fmt.Errorf("%w: %s", ErrTimeout, ref)
			}
			return "", fmt.Errorf("scraper: read %s: %w", ref, err)
		}

		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			c.count(func(s *Stats) { s.Throttled++ })
			c.cThrottle.Inc()
			throttleBudget--
			if throttleBudget <= 0 {
				return "", fmt.Errorf("scraper: %s: persistent rate limiting", ref)
			}
			if err := obs.SleepContext(ctx, throttleBackoff); err != nil {
				return "", err
			}
			if throttleBackoff < 800*time.Millisecond {
				throttleBackoff *= 2
			}
			attempt-- // throttling does not consume a retry
			continue
		case http.StatusForbidden:
			doc := htmlparse.Parse(string(body))
			if ch := doc.ByID("captcha"); ch != nil {
				err := c.solveCaptcha(ctx, ch)
				if errors.Is(err, errStaleChallenge) {
					// A concurrent worker already cleared this gate;
					// just retry the request.
					continue
				}
				if err != nil {
					return "", err
				}
				continue
			}
			return "", fmt.Errorf("scraper: forbidden: %s", ref)
		case http.StatusNotFound, http.StatusGone:
			return "", fmt.Errorf("%w: %s (%d)", ErrGone, ref, resp.StatusCode)
		case http.StatusBadRequest:
			return "", fmt.Errorf("%w: %s (400)", ErrGone, ref)
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("scraper: %s: unexpected status %d", ref, resp.StatusCode)
		}
		journal.Emit(ctx, "scraper", journal.KindPageFetched, map[string]any{
			"ref":      ref,
			"status":   resp.StatusCode,
			"bytes":    len(body),
			"attempts": attempt + 1,
		})
		return string(body), nil
	}
	return "", fmt.Errorf("scraper: %s: gave up after repeated throttling", ref)
}

func (c *Client) newRequest(ctx context.Context, ref string) (*http.Request, error) {
	u, err := url.Parse(ref)
	if err != nil {
		return nil, fmt.Errorf("scraper: bad ref %q: %w", ref, err)
	}
	full := c.base.ResolveReference(u).String()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, full, nil)
	if err != nil {
		return nil, fmt.Errorf("scraper: build request: %w", err)
	}
	// Mimic human/browser traffic (§3 iii).
	req.Header.Set("User-Agent", "Mozilla/5.0 (X11; Linux x86_64) ReproCrawler/1.0")
	req.Header.Set("X-Session", c.session)
	return req, nil
}

func (c *Client) solveCaptcha(ctx context.Context, ch *htmlparse.Node) error {
	if c.solver == nil {
		return fmt.Errorf("scraper: captcha encountered with no solver configured")
	}
	challengeID, _ := ch.Attr("data-challenge-id")
	prompt := ""
	if p := ch.SelectFirst("p.challenge-text"); p != nil {
		prompt = p.Text()
	}
	answer, err := SolveContext(ctx, c.solver, prompt)
	if err != nil {
		return fmt.Errorf("scraper: solve captcha: %w", err)
	}
	form := url.Values{"challenge_id": {challengeID}, "answer": {answer}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base.ResolveReference(&url.URL{Path: "/captcha"}).String(),
		strings.NewReader(form.Encode()))
	if err != nil {
		return fmt.Errorf("scraper: build captcha post: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("X-Session", c.session)
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("scraper: post captcha: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusForbidden {
		// The answer was right for a challenge that no longer exists —
		// typical when concurrent workers race one gate.
		return errStaleChallenge
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scraper: captcha rejected (%d)", resp.StatusCode)
	}
	doc := htmlparse.Parse(string(body))
	passNode := doc.ByID("captcha-pass")
	if passNode == nil {
		return fmt.Errorf("scraper: captcha response missing pass token")
	}
	pass, _ := passNode.Attr("data-pass")
	c.mu.Lock()
	c.pass = pass
	c.stats.CaptchasSolved++
	c.mu.Unlock()
	c.cCaptchas.Inc()
	journal.Emit(ctx, "scraper", journal.KindCaptchaSolved, map[string]any{
		"challenge_id": challengeID,
	})
	return nil
}

func (c *Client) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// countRetry records one detail-page retry in both stat systems.
func (c *Client) countRetry() {
	c.count(func(s *Stats) { s.Retries++ })
	c.cRetries.Inc()
}

func isTimeout(err error) bool {
	var ne interface{ Timeout() bool }
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return strings.Contains(err.Error(), "Client.Timeout")
}
