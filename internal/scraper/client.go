package scraper

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/htmlparse"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/trace"
	"repro/internal/retry"
)

// Client is a polite, captcha-capable HTTP fetcher for one target site.
// It self-limits its request rate (§3: "we limit the rate at which we
// generate our requests"), mimics a browser user agent, and reacts to
// challenge pages by calling the solver and retrying. Every wait is
// cancellation-aware: pass a context via the *Context methods to abort
// a crawl mid-backoff.
type Client struct {
	base    *url.URL
	http    *http.Client
	solver  Solver
	session string

	// MinInterval between requests; zero disables self-limiting.
	minInterval time.Duration

	// retryBudget, when set, is shared across every fetch this client
	// makes (per-stage budget); nil gives each fetch its own pool.
	// Guarded by mu so a resumed run can restore a remainder.
	retryBudget *retry.Budget
	// transportRetries bounds transient-fault retries (5xx, resets,
	// truncated bodies) per fetch.
	transportRetries int
	// breakers, when set, short-circuits fetches against endpoint
	// classes that are persistently failing; nil disables the circuit.
	breakers *retry.BreakerSet

	mu      sync.Mutex
	lastReq time.Time
	pass    string
	stats   Stats

	// observability
	cRequests    *obs.Counter
	cThrottle    *obs.Counter
	cCaptchas    *obs.Counter
	cTimeouts    *obs.Counter
	cRetries     *obs.Counter
	cTransient   *obs.Counter
	cQuarantined *obs.Counter
	hFetch       *obs.Histogram
}

// ClientConfig configures a Client — the one-struct replacement for the
// old four-positional-argument constructor.
type ClientConfig struct {
	// BaseURL is the site root every relative ref resolves against.
	BaseURL string
	// Timeout bounds each fetch; zero means no client-side deadline.
	Timeout time.Duration
	// MinInterval spaces successive requests (politeness); zero
	// disables self-limiting.
	MinInterval time.Duration
	// Solver answers captcha challenges; nil fails on captchas.
	Solver Solver
	// Obs receives the client's counters and fetch-latency histogram;
	// nil uses the process-default registry.
	Obs *obs.Registry
	// RetryBudget shares one retry pool across every fetch (a per-stage
	// budget); nil gives each fetch its own pool of 60 retries.
	RetryBudget *retry.Budget
	// TransportRetries bounds per-fetch retries of transient transport
	// faults — 5xx responses, connection resets, truncated bodies
	// (default 3; throttling has its own budget).
	TransportRetries int
	// Breakers, when set, wraps every fetch in a per-endpoint-class
	// circuit breaker: once a class (host + first path segment, e.g.
	// "/bot") fails persistently, further fetches fail fast with
	// ErrUnavailable instead of burning the backoff schedule.
	Breakers *retry.BreakerSet
}

// Stats counts crawler-side events, the operational numbers a
// measurement paper reports.
type Stats struct {
	Requests       int
	Throttled      int
	CaptchasSolved int
	Timeouts       int
	Retries        int
	// TransientRetries counts retries of transport-level faults (5xx,
	// resets, truncated bodies) — the degradation the chaos harness
	// injects.
	TransientRetries int
}

// ErrTimeout marks a fetch that exceeded the client deadline — the
// scraper's TimeoutException.
var ErrTimeout = errors.New("scraper: request timed out")

// ErrGone marks 404/410 responses.
var ErrGone = errors.New("scraper: resource gone")

// ErrUnavailable marks a fetch abandoned because transient transport
// faults (5xx, resets, truncated bodies) exhausted their retries — an
// infrastructure failure, not a property of the resource.
var ErrUnavailable = errors.New("scraper: endpoint unavailable after retries")

// errStaleChallenge marks a captcha answer for a challenge another
// worker already cleared; the request is simply retried.
var errStaleChallenge = errors.New("scraper: stale captcha challenge")

// isInfraErr reports whether err is an infrastructure failure — the
// endpoint could not be reached within the retry policy — as opposed
// to a definitive response about the resource (gone, forbidden, slow).
func isInfraErr(err error) bool {
	return errors.Is(err, ErrUnavailable) ||
		errors.Is(err, retry.ErrExhausted) ||
		errors.Is(err, retry.ErrBudgetExhausted)
}

// NewClient builds a client from a ClientConfig.
func NewClient(cfg ClientConfig) (*Client, error) {
	u, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("scraper: bad base url: %w", err)
	}
	reg := obs.Or(cfg.Obs)
	if cfg.TransportRetries <= 0 {
		cfg.TransportRetries = 3
	}
	return &Client{
		base:             u,
		http:             &http.Client{Timeout: cfg.Timeout},
		solver:           cfg.Solver,
		minInterval:      cfg.MinInterval,
		retryBudget:      cfg.RetryBudget,
		transportRetries: cfg.TransportRetries,
		breakers:         cfg.Breakers,
		session:          fmt.Sprintf("s%d", time.Now().UnixNano()),
		cRequests:        reg.Counter("scraper_requests_total"),
		cThrottle:        reg.Counter("scraper_throttled_total"),
		cCaptchas:        reg.Counter("scraper_captcha_solves_total"),
		cTimeouts:        reg.Counter("scraper_timeouts_total"),
		cRetries:         reg.Counter("scraper_retries_total"),
		cTransient:       reg.Counter("scraper_transient_retries_total"),
		cQuarantined:     reg.Counter("scraper_bots_quarantined_total"),
		hFetch:           reg.Histogram("scraper_fetch_seconds"),
	}, nil
}

// Stats returns a copy of the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// SetRetryBudget swaps the client's shared retry budget. A resumed run
// uses it to restore the remainder a checkpoint recorded, so a stage
// that had nearly exhausted its budget before the crash cannot respend
// it after resume.
func (c *Client) SetRetryBudget(b *retry.Budget) {
	c.mu.Lock()
	c.retryBudget = b
	c.mu.Unlock()
}

// endpointClass maps a ref to its breaker key: host plus the first
// path segment, so /bot/99 and /bot/7 share one circuit while /bots
// and /site each get their own.
func (c *Client) endpointClass(ref string) string {
	u, err := url.Parse(ref)
	if err != nil {
		return c.base.Host + " " + ref
	}
	full := c.base.ResolveReference(u)
	seg := full.Path
	if i := strings.Index(strings.TrimPrefix(seg, "/"), "/"); i >= 0 {
		seg = seg[:i+1]
	}
	return full.Host + " " + seg
}

// pace enforces the politeness interval, aborting early when ctx is
// cancelled.
func (c *Client) pace(ctx context.Context) error {
	c.mu.Lock()
	interval := c.minInterval
	if interval <= 0 {
		c.mu.Unlock()
		return ctx.Err()
	}
	wait := interval - time.Since(c.lastReq)
	if wait > 0 {
		c.lastReq = c.lastReq.Add(interval)
	} else {
		c.lastReq = time.Now()
	}
	c.mu.Unlock()
	if wait > 0 {
		return obs.SleepContext(ctx, wait)
	}
	return ctx.Err()
}

// GetContext fetches a path (or absolute URL) and parses the response
// body as HTML, transparently solving captchas and backing off on rate
// limits.
func (c *Client) GetContext(ctx context.Context, ref string) (*htmlparse.Node, error) {
	body, err := c.GetRawContext(ctx, ref)
	if err != nil {
		return nil, err
	}
	return htmlparse.Parse(body), nil
}

// Retryable-failure classes GetRawContext distinguishes. Throttling
// (429) is the site pacing us and draws on the generous retry budget;
// transient transport faults (5xx, resets, truncated bodies) are
// network weather and get a small per-fetch allowance; captcha
// challenges are handled by the solver and merely repeat the request.
var errThrottled = errors.New("scraper: throttled (429)")

// transientError tags a retryable transport-level failure.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// captchaChallenge carries a challenge page back to the retry loop.
type captchaChallenge struct{ node *htmlparse.Node }

func (e *captchaChallenge) Error() string { return "scraper: captcha challenge" }

// fetchPolicy is the client's shared backoff shape: exponential from
// 40ms to 800ms with ±12.5% jitter, seeded per-ref so schedules are
// reproducible. Retry-After hints are honored but clamped — the
// synthetic site asks for a full second, which no polite-but-busy
// crawler grants in full.
func (c *Client) fetchPolicy(ref string, budget *retry.Budget) retry.Policy {
	h := fnv.New64a()
	io.WriteString(h, ref)
	return retry.Policy{
		MaxAttempts:   64, // budget and transport allowance bind first
		BaseDelay:     40 * time.Millisecond,
		MaxDelay:      800 * time.Millisecond,
		Multiplier:    2,
		Jitter:        0.25,
		Seed:          int64(h.Sum64()),
		RetryAfterCap: 120 * time.Millisecond,
		Budget:        budget,
	}
}

// GetRawContext is GetRaw with cancellation: every retry backoff and
// the request itself abort as soon as ctx is done. Retries run through
// internal/retry — jittered exponential backoff with Retry-After
// honoring — with throttling drawing on the client's (or per-fetch)
// retry budget and transient transport faults on a small per-fetch
// allowance.
func (c *Client) GetRawContext(ctx context.Context, ref string) (string, error) {
	c.mu.Lock()
	budget := c.retryBudget
	c.mu.Unlock()
	if budget == nil {
		budget = retry.NewBudget(60)
	}
	br := c.breakers.For(c.endpointClass(ref))
	transientLeft := c.transportRetries
	attempts := 0
	var body string
	err := retry.Do(ctx, c.fetchPolicy(ref, budget), func(ctx context.Context) error {
		attempts++
		if berr := br.Allow(); berr != nil {
			// The circuit for this endpoint class is open: fail fast as
			// an infrastructure error so the caller quarantines instead
			// of burning the backoff schedule on a known-down endpoint.
			return retry.Permanent(fmt.Errorf("%w: %s: %v", ErrUnavailable, ref, berr))
		}
		opName := "page_fetch"
		if attempts > 1 {
			opName = "retry_attempt"
		}
		endOp := trace.StartOpDetail(ctx, opName, ref)
		out, err := c.fetchOnce(ctx, ref)
		endOp()
		// Only transient transport faults condemn the endpoint class:
		// throttling, captchas, and 404s prove the endpoint is alive.
		var bte *transientError
		br.Record(errors.As(err, &bte))
		if err == nil {
			body = out
			return nil
		}
		var ch *captchaChallenge
		if errors.As(err, &ch) {
			endSolve := trace.StartOpDetail(ctx, "captcha_solve", ref)
			serr := c.solveCaptcha(ctx, ch.node)
			endSolve()
			if serr != nil && !errors.Is(serr, errStaleChallenge) {
				// A stale challenge just means another worker cleared
				// the gate — anything else is fatal for this fetch.
				return retry.Permanent(serr)
			}
			return err // retry the request with the fresh pass
		}
		var te *transientError
		if errors.As(err, &te) {
			if transientLeft <= 0 {
				return retry.Permanent(fmt.Errorf("%w: %s: %v", ErrUnavailable, ref, te.err))
			}
			transientLeft--
			c.count(func(s *Stats) { s.TransientRetries++ })
			c.cTransient.Inc()
		}
		return err
	})
	if err != nil {
		return "", err
	}
	journal.Emit(ctx, "scraper", journal.KindPageFetched, map[string]any{
		"ref":      ref,
		"status":   http.StatusOK,
		"bytes":    len(body),
		"attempts": attempts,
	})
	return body, nil
}

// fetchOnce performs a single paced request and classifies the outcome:
// nil on a 200, a captchaChallenge on a challenge page, errThrottled
// (with its Retry-After hint) on 429, a transientError on 5xx or
// non-timeout transport failures, and a permanent error otherwise.
func (c *Client) fetchOnce(ctx context.Context, ref string) (string, error) {
	if err := c.pace(ctx); err != nil {
		return "", err
	}
	req, err := c.newRequest(ctx, ref)
	if err != nil {
		return "", retry.Permanent(err)
	}
	c.mu.Lock()
	c.stats.Requests++
	if c.pass != "" {
		req.Header.Set("X-Captcha-Pass", c.pass)
		c.pass = ""
	}
	c.mu.Unlock()
	c.cRequests.Inc()

	fetchStart := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		if isTimeout(err) {
			c.count(func(s *Stats) { s.Timeouts++ })
			c.cTimeouts.Inc()
			return "", retry.Permanent(fmt.Errorf("%w: %s", ErrTimeout, ref))
		}
		return "", &transientError{fmt.Errorf("scraper: get %s: %w", ref, err)}
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	c.hFetch.Observe(time.Since(fetchStart))
	if err != nil {
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		if isTimeout(err) {
			c.count(func(s *Stats) { s.Timeouts++ })
			c.cTimeouts.Inc()
			return "", retry.Permanent(fmt.Errorf("%w: %s", ErrTimeout, ref))
		}
		// A body that dies mid-read (truncation, reset) is transient.
		return "", &transientError{fmt.Errorf("scraper: read %s: %w", ref, err)}
	}

	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		c.count(func(s *Stats) { s.Throttled++ })
		c.cThrottle.Inc()
		hint, _ := retry.ParseRetryAfter(resp.Header.Get("Retry-After"))
		return "", retry.After(fmt.Errorf("%w: %s", errThrottled, ref), hint)
	case resp.StatusCode == http.StatusForbidden:
		doc := htmlparse.Parse(string(body))
		if ch := doc.ByID("captcha"); ch != nil {
			return "", &captchaChallenge{node: ch}
		}
		return "", retry.Permanent(fmt.Errorf("scraper: forbidden: %s", ref))
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusGone:
		return "", retry.Permanent(fmt.Errorf("%w: %s (%d)", ErrGone, ref, resp.StatusCode))
	case resp.StatusCode == http.StatusBadRequest:
		return "", retry.Permanent(fmt.Errorf("%w: %s (400)", ErrGone, ref))
	case resp.StatusCode >= 500:
		return "", &transientError{fmt.Errorf("scraper: %s: server error %d", ref, resp.StatusCode)}
	case resp.StatusCode != http.StatusOK:
		return "", retry.Permanent(fmt.Errorf("scraper: %s: unexpected status %d", ref, resp.StatusCode))
	}
	return string(body), nil
}

func (c *Client) newRequest(ctx context.Context, ref string) (*http.Request, error) {
	u, err := url.Parse(ref)
	if err != nil {
		return nil, fmt.Errorf("scraper: bad ref %q: %w", ref, err)
	}
	full := c.base.ResolveReference(u).String()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, full, nil)
	if err != nil {
		return nil, fmt.Errorf("scraper: build request: %w", err)
	}
	// Mimic human/browser traffic (§3 iii).
	req.Header.Set("User-Agent", "Mozilla/5.0 (X11; Linux x86_64) ReproCrawler/1.0")
	req.Header.Set("X-Session", c.session)
	return req, nil
}

func (c *Client) solveCaptcha(ctx context.Context, ch *htmlparse.Node) error {
	if c.solver == nil {
		return fmt.Errorf("scraper: captcha encountered with no solver configured")
	}
	challengeID, _ := ch.Attr("data-challenge-id")
	prompt := ""
	if p := ch.SelectFirst("p.challenge-text"); p != nil {
		prompt = p.Text()
	}
	answer, err := SolveContext(ctx, c.solver, prompt)
	if err != nil {
		return fmt.Errorf("scraper: solve captcha: %w", err)
	}
	form := url.Values{"challenge_id": {challengeID}, "answer": {answer}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base.ResolveReference(&url.URL{Path: "/captcha"}).String(),
		strings.NewReader(form.Encode()))
	if err != nil {
		return fmt.Errorf("scraper: build captcha post: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("X-Session", c.session)
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("scraper: post captcha: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusForbidden {
		// The answer was right for a challenge that no longer exists —
		// typical when concurrent workers race one gate.
		return errStaleChallenge
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scraper: captcha rejected (%d)", resp.StatusCode)
	}
	doc := htmlparse.Parse(string(body))
	passNode := doc.ByID("captcha-pass")
	if passNode == nil {
		return fmt.Errorf("scraper: captcha response missing pass token")
	}
	pass, _ := passNode.Attr("data-pass")
	c.mu.Lock()
	c.pass = pass
	c.stats.CaptchasSolved++
	c.mu.Unlock()
	c.cCaptchas.Inc()
	journal.Emit(ctx, "scraper", journal.KindCaptchaSolved, map[string]any{
		"challenge_id": challengeID,
	})
	return nil
}

func (c *Client) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// countRetry records one detail-page retry in both stat systems.
func (c *Client) countRetry() {
	c.count(func(s *Stats) { s.Retries++ })
	c.cRetries.Inc()
}

func isTimeout(err error) bool {
	var ne interface{ Timeout() bool }
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return strings.Contains(err.Error(), "Client.Timeout")
}
