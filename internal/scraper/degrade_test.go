package scraper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// detailPage renders a minimal bot detail page, optionally without the
// invite anchor.
func detailPage(id int, withInvite bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<html><body><div id="bot-detail" data-bot-id="%d">
<h1 class="bot-name">bot-%d</h1><p class="description">d</p>
<span class="guild-count">1</span><span class="vote-count">1</span>
<span class="prefix">!</span>`, id, id)
	if withInvite {
		fmt.Fprintf(&b, `<a class="invite" href="/oauth/authorize?bot_id=%d&amp;permissions=1">Invite</a>`, id)
	}
	b.WriteString(`</div></body></html>`)
	return b.String()
}

func listingPage(ids ...int) string {
	var b strings.Builder
	b.WriteString(`<html><body><ul>`)
	for _, id := range ids {
		fmt.Fprintf(&b, `<li class="bot-card" data-bot-id="%d">bot-%d</li>`, id, id)
	}
	b.WriteString(`</ul></body></html>`)
	return b.String()
}

// TestIncompleteWhenInviteNeverRenders is the regression test for the
// silent permission-less record: a detail page whose invite element is
// missing on every render must yield a record marked Incomplete after
// retries are exhausted, not a clean-looking invalid record.
func TestIncompleteWhenInviteNeverRenders(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/bot/") {
			io.WriteString(w, detailPage(7, false))
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	rec, err := ScrapeBotContext(context.Background(), c, 7, 2)
	if err != nil {
		t.Fatalf("ScrapeBotContext: %v", err)
	}
	if !rec.Incomplete {
		t.Fatal("record not marked Incomplete though the invite never rendered")
	}
	if rec.InvalidReason != InvalidMissingLink {
		t.Fatalf("InvalidReason = %q, want %q", rec.InvalidReason, InvalidMissingLink)
	}
	if c.Stats().Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (every retry consumed)", c.Stats().Retries)
	}

	// Control: with the invite present, the record is complete.
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/bot/"):
			io.WriteString(w, detailPage(7, true))
		case r.URL.Path == "/oauth/authorize":
			io.WriteString(w, `<html><body><div id="consent"><span id="perm-value">1</span></div></body></html>`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv2.Close()
	c2 := newTestClient(t, srv2.URL, nil)
	rec2, err := ScrapeBotContext(context.Background(), c2, 7, 2)
	if err != nil {
		t.Fatalf("ScrapeBotContext: %v", err)
	}
	if rec2.Incomplete {
		t.Fatal("complete record wrongly marked Incomplete")
	}
	if !rec2.PermsValid {
		t.Fatal("control record should have valid permissions")
	}
}

// TestCrawlQuarantinesFailingBot: one bot's detail endpoint is a
// permanent 503 storm. The lenient crawl must return every other
// record and quarantine exactly that bot; the strict crawl must abort.
func TestCrawlQuarantinesFailingBot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/bots"):
			io.WriteString(w, listingPage(1, 2, 3))
		case r.URL.Path == "/bot/2":
			http.Error(w, "storm", http.StatusServiceUnavailable)
		case strings.HasPrefix(r.URL.Path, "/bot/"):
			io.WriteString(w, detailPage(99, true))
		case r.URL.Path == "/oauth/authorize":
			io.WriteString(w, `<html><body><div id="consent"><span id="perm-value">1</span></div></body></html>`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	res, err := CrawlResultContext(context.Background(), c, Config{Workers: 2, Retries: 1})
	if err != nil {
		t.Fatalf("lenient crawl errored: %v", err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(res.Records))
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].BotID != 2 {
		t.Fatalf("quarantined = %+v, want bot 2 only", res.Quarantined)
	}
	if !errors.Is(res.Quarantined[0].Err, ErrUnavailable) {
		t.Fatalf("quarantine error = %v, want ErrUnavailable", res.Quarantined[0].Err)
	}
	if !res.Degraded() {
		t.Fatal("crawl with a quarantine must report Degraded")
	}

	// Strict mode restores the historical abort-on-first-failure.
	c2 := newTestClient(t, srv.URL, nil)
	if _, err := CrawlResultContext(context.Background(), c2, Config{Workers: 2, Retries: 1, Strict: true}); err == nil {
		t.Fatal("strict crawl should abort on the failing bot")
	}
}

// TestPartialListingSurvives: pagination dies on page 2; the lenient
// crawl still scrapes everything page 1 discovered and reports ListErr.
func TestPartialListingSurvives(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/bots"):
			if r.URL.Query().Get("page") == "1" {
				io.WriteString(w, listingPage(1, 2)+`<a id="next-page" href="/bots?page=2">Next</a>`)
				return
			}
			http.Error(w, "storm", http.StatusServiceUnavailable)
		case strings.HasPrefix(r.URL.Path, "/bot/"):
			io.WriteString(w, detailPage(1, true))
		case r.URL.Path == "/oauth/authorize":
			io.WriteString(w, `<html><body><div id="consent"><span id="perm-value">1</span></div></body></html>`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	res, err := CrawlResultContext(context.Background(), c, Config{Workers: 2, Retries: 1})
	if err != nil {
		t.Fatalf("lenient crawl errored: %v", err)
	}
	if res.ListErr == nil {
		t.Fatal("ListErr not set for a dead page 2")
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %d, want the 2 bots page 1 listed", len(res.Records))
	}

	// Strict mode propagates the pagination failure.
	c2 := newTestClient(t, srv.URL, nil)
	if _, err := CrawlResultContext(context.Background(), c2, Config{Workers: 2, Retries: 1, Strict: true}); err == nil {
		t.Fatal("strict crawl should fail on a dead listing page")
	}
}

// TestCrawlCancellationStillAborts: lenient mode never swallows
// context cancellation.
func TestCrawlCancellationStillAborts(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/bots") {
			io.WriteString(w, listingPage(1, 2, 3))
			return
		}
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := CrawlResultContext(ctx, c, Config{Workers: 2, Retries: 1})
	if err == nil {
		t.Fatal("cancelled crawl returned nil error")
	}
}
