package scraper

import (
	"bufio"
	"context"
	"strconv"
	"strings"
	"time"
)

// robots.txt support. The paper's ethics statement commits to crawling
// "at a rate that does not create any disruption to other service
// users"; honouring the site's published crawl policy is the standard
// mechanism for that commitment. The parser implements the common
// subset: User-agent groups, Disallow/Allow prefixes, and the
// Crawl-delay extension.

// RobotsPolicy is a parsed robots.txt, resolved for one user agent.
type RobotsPolicy struct {
	disallow   []string
	allow      []string
	CrawlDelay time.Duration
	// Exists is false when the site serves no robots.txt; everything
	// is then allowed.
	Exists bool
}

// ParseRobots parses robots.txt content, keeping the most specific
// matching group for userAgent (exact token match or "*").
func ParseRobots(content, userAgent string) RobotsPolicy {
	userAgent = strings.ToLower(userAgent)
	type group struct {
		agents []string
		policy RobotsPolicy
	}
	var groups []group
	var cur *group
	inAgents := false

	sc := bufio.NewScanner(strings.NewReader(content))
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "user-agent":
			if cur == nil || !inAgents {
				groups = append(groups, group{})
				cur = &groups[len(groups)-1]
				inAgents = true
			}
			cur.agents = append(cur.agents, strings.ToLower(val))
		case "disallow":
			if cur != nil {
				inAgents = false
				if val != "" {
					cur.policy.disallow = append(cur.policy.disallow, val)
				}
			}
		case "allow":
			if cur != nil {
				inAgents = false
				if val != "" {
					cur.policy.allow = append(cur.policy.allow, val)
				}
			}
		case "crawl-delay":
			if cur != nil {
				inAgents = false
				if secs, err := strconv.ParseFloat(val, 64); err == nil && secs >= 0 {
					cur.policy.CrawlDelay = time.Duration(secs * float64(time.Second))
				}
			}
		}
	}

	// Prefer an exact agent group over the wildcard group.
	var wildcard, exact *RobotsPolicy
	for i := range groups {
		for _, a := range groups[i].agents {
			if a == "*" && wildcard == nil {
				wildcard = &groups[i].policy
			}
			if a != "*" && strings.Contains(userAgent, a) && exact == nil {
				exact = &groups[i].policy
			}
		}
	}
	chosen := wildcard
	if exact != nil {
		chosen = exact
	}
	if chosen == nil {
		return RobotsPolicy{Exists: true}
	}
	out := *chosen
	out.Exists = true
	return out
}

// Allowed reports whether a path may be fetched. Longest-prefix match
// wins between Allow and Disallow, Google-style; ties favour Allow.
func (p RobotsPolicy) Allowed(path string) bool {
	if !p.Exists {
		return true
	}
	best := 0
	allowed := true
	for _, a := range p.allow {
		if strings.HasPrefix(path, a) && len(a) >= best {
			best = len(a)
			allowed = true
		}
	}
	for _, d := range p.disallow {
		if strings.HasPrefix(path, d) && len(d) > best {
			best = len(d)
			allowed = false
		}
	}
	return allowed
}

// LoadRobots fetches and parses the site's robots.txt for this client's
// user agent, and — when the policy requests a crawl delay larger than
// the client's current pacing — slows the client down to comply.
func (c *Client) LoadRobots(ctx context.Context) (RobotsPolicy, error) {
	body, err := c.GetRawContext(ctx, "/robots.txt")
	if err != nil {
		// No robots.txt: everything allowed, no delay mandated.
		return RobotsPolicy{}, nil
	}
	pol := ParseRobots(body, "ReproCrawler")
	if pol.CrawlDelay > 0 {
		c.mu.Lock()
		if pol.CrawlDelay > c.minInterval {
			c.minInterval = pol.CrawlDelay
		}
		c.mu.Unlock()
	}
	return pol, nil
}
