package traceability

import (
	"testing"

	"repro/internal/permissions"
	"repro/internal/policygen"
)

func TestAuditDataTypesExposureAndMentions(t *testing.T) {
	policy := "We collect message content and your uploaded files for features."
	perms := permissions.ViewChannel | permissions.AttachFiles | permissions.Connect
	findings := AuditDataTypes(policy, perms)
	if len(findings) != len(Ontology) {
		t.Fatalf("findings = %d, want %d", len(findings), len(Ontology))
	}
	byData := make(map[policygen.DataType]DataTypeFinding)
	for _, f := range findings {
		byData[f.Data] = f
	}
	mc := byData[policygen.DataMessageContent]
	if !mc.Exposed || !mc.Mentioned || mc.Gap() {
		t.Errorf("message content finding = %+v", mc)
	}
	att := byData[policygen.DataAttachments]
	if !att.Exposed || !att.Mentioned {
		t.Errorf("attachments finding = %+v", att)
	}
	voice := byData[policygen.DataVoiceMetadata]
	if !voice.Exposed || voice.Mentioned || !voice.Gap() {
		t.Errorf("voice finding should be an unmentioned exposure: %+v", voice)
	}
	guild := byData[policygen.DataGuildInfo]
	if guild.Exposed {
		t.Errorf("guild info not reachable without manage-server: %+v", guild)
	}
}

func TestAuditDataTypesAdminExposesEverything(t *testing.T) {
	findings := AuditDataTypes("", permissions.Administrator)
	for _, f := range findings {
		if !f.Exposed {
			t.Errorf("admin should expose %s", f.Data)
		}
		if !f.Gap() {
			t.Errorf("empty policy should gap on %s", f.Data)
		}
	}
	if got := DataTypeGapCount("", permissions.Administrator); got != len(Ontology) {
		t.Errorf("gap count = %d, want %d", got, len(Ontology))
	}
}

func TestDataTypeGapCountZeroForFullDisclosure(t *testing.T) {
	policy := `We process message content, message metadata, voice metadata,
uploaded files, server configuration, and command usage statistics.`
	if got := DataTypeGapCount(policy, permissions.Administrator); got != 0 {
		t.Errorf("full-disclosure gap count = %d", got)
	}
	// A bot with no data-exposing permissions has nothing to gap.
	if got := DataTypeGapCount("", permissions.SendMessages); got != 0 {
		t.Errorf("send-only gap count = %d", got)
	}
}

func TestDataTypeResultAggregation(t *testing.T) {
	r := NewDataTypeResult()
	r.Add("we collect message content", permissions.ViewChannel) // 0 gaps
	r.Add("", permissions.ViewChannel)                           // 1 gap
	r.Add("", permissions.ViewChannel|permissions.AttachFiles)   // 2 gaps
	r.Add("", permissions.SendMessages)                          // 0 gaps (nothing exposed)
	if r.Bots != 4 {
		t.Fatalf("bots = %d", r.Bots)
	}
	if r.FullyAccounted() != 2 {
		t.Errorf("fully accounted = %d, want 2", r.FullyAccounted())
	}
	if r.GapsPerBot[1] != 1 || r.GapsPerBot[2] != 1 {
		t.Errorf("histogram = %v", r.GapsPerBot)
	}
	if r.ExposedByData[policygen.DataMessageContent] != 3 {
		t.Errorf("exposed message content = %d", r.ExposedByData[policygen.DataMessageContent])
	}
	if r.MentionedByData[policygen.DataMessageContent] != 1 {
		t.Errorf("mentioned message content = %d", r.MentionedByData[policygen.DataMessageContent])
	}
}

func TestOntologyCoversAllGeneratorDataTypes(t *testing.T) {
	// Every data type the policy generator can emit (except the purely
	// account-level ones) must be reachable through the ontology, so
	// the audit can in principle find full disclosure.
	covered := make(map[policygen.DataType]bool)
	for _, row := range Ontology {
		covered[row.Data] = true
		if len(row.Surface) == 0 {
			t.Errorf("ontology row %s has no surface forms", row.Data)
		}
		if row.Type.Count() != 1 {
			t.Errorf("ontology row %s maps a multi-bit permission", row.Data)
		}
	}
	for _, dt := range []policygen.DataType{
		policygen.DataMessageContent, policygen.DataMessageMetadata,
		policygen.DataVoiceMetadata, policygen.DataAttachments,
		policygen.DataGuildInfo, policygen.DataCommandUsage,
	} {
		if !covered[dt] {
			t.Errorf("ontology missing %s", dt)
		}
	}
}
