package traceability

import (
	"fmt"
	"testing"

	"repro/internal/permissions"
	"repro/internal/policygen"
)

func TestMissingPolicyIsBroken(t *testing.T) {
	var a Analyzer
	v := a.AnalyzePolicy("", permissions.Administrator)
	if v.Class != policygen.Broken || v.HasPolicy {
		t.Fatalf("missing policy verdict = %+v", v)
	}
	if len(v.UndisclosedPerms) == 0 {
		t.Error("admin bot without a policy should flag undisclosed data access")
	}
	v2 := a.AnalyzePolicy("   \n\t ", permissions.SendMessages)
	if v2.Class != policygen.Broken || v2.HasPolicy {
		t.Errorf("whitespace policy verdict = %+v", v2)
	}
}

func TestCompletePolicy(t *testing.T) {
	var a Analyzer
	policy := `We collect message content from your channels.
We use this data to answer commands.
Data is stored for 30 days.
We never share information with third parties.`
	v := a.AnalyzePolicy(policy, permissions.ViewChannel)
	if v.Class != policygen.Complete {
		t.Fatalf("class = %s, covered = %v", v.Class, v.Covered)
	}
	if len(v.Covered) != 4 {
		t.Errorf("covered = %v", v.Covered)
	}
	if len(v.UndisclosedPerms) != 0 {
		t.Errorf("complete policy flagged undisclosed perms: %v", v.UndisclosedPerms)
	}
}

func TestPartialPolicy(t *testing.T) {
	var a Analyzer
	v := a.AnalyzePolicy("We collect usernames. We process them for commands.", permissions.ViewChannel)
	if v.Class != policygen.Partial {
		t.Fatalf("class = %s", v.Class)
	}
	want := map[policygen.Category]bool{policygen.Collect: true, policygen.Use: true}
	for _, c := range v.Covered {
		if !want[c] {
			t.Errorf("unexpected covered category %s", c)
		}
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("missing categories: %v", want)
	}
}

func TestBrokenDocumentWithoutKeywords(t *testing.T) {
	var a Analyzer
	policy := "Welcome! This page talks about our awesome bot. Contact support any time."
	v := a.AnalyzePolicy(policy, permissions.ReadMessageHistory)
	if v.Class != policygen.Broken || !v.HasPolicy {
		t.Fatalf("keyword-free doc verdict = %+v", v)
	}
	if len(v.UndisclosedPerms) == 0 {
		t.Error("history-reading bot with no collection disclosure should be flagged")
	}
}

func TestWordBoundaryMatching(t *testing.T) {
	var a Analyzer
	// "museum" contains "use"; "recordings" contains "record";
	// "bookkeeping" contains "keep". None should match on boundaries.
	policy := "Our museum of bookkeeping recordings is carefully housed."
	v := a.AnalyzePolicy(policy, permissions.None)
	if v.Class != policygen.Broken {
		t.Fatalf("boundary matcher produced false positives: %+v", v.Hits)
	}
	// The substring ablation mode DOES false-positive here.
	sub := Analyzer{Substring: true}
	v2 := sub.AnalyzePolicy(policy, permissions.None)
	if v2.Class == policygen.Broken {
		t.Error("substring mode unexpectedly clean — ablation baseline lost its point")
	}
}

func TestPhraseKeywords(t *testing.T) {
	var a Analyzer
	v := a.AnalyzePolicy("Data may go to a third party for hosting.", permissions.None)
	found := false
	for _, c := range v.Covered {
		if c == policygen.Disclose {
			found = true
		}
	}
	if !found {
		t.Errorf("phrase keyword 'third party' missed: %+v", v.Hits)
	}
	v2 := a.AnalyzePolicy("We work with third-party processors.", permissions.None)
	if len(v2.Hits[policygen.Disclose]) == 0 {
		t.Errorf("hyphenated phrase missed: %+v", v2.Hits)
	}
}

func TestPhraseWordBoundaries(t *testing.T) {
	var a Analyzer
	// Phrase keywords must respect word boundaries on both ends:
	// "third party" inside "third partygoers" (suffix growth) or
	// "a-third party" (hyphenated prefix, a word character under
	// tokenize's rules) is not a disclosure statement.
	for _, policy := range []string{
		"The third partygoers had a great time.",
		"We photographed thirdparty logos.",
		"Our not-quite-third-party-ish mascot waved.",
	} {
		v := a.AnalyzePolicy(policy, permissions.None)
		if len(v.Hits[policygen.Disclose]) != 0 {
			t.Errorf("phrase matched inside larger word: %q -> %+v", policy, v.Hits)
		}
	}
	// Genuine boundaries still match: start/end of text, punctuation,
	// and plain spaces.
	for _, policy := range []string{
		"third party processors receive data",
		"data goes to a third party",
		"we disclose to a third party, never more",
		"(third parties) may receive metadata",
	} {
		v := a.AnalyzePolicy(policy, permissions.None)
		if len(v.Hits[policygen.Disclose]) == 0 {
			t.Errorf("legitimate phrase missed: %q", policy)
		}
	}
	// The substring ablation keeps the naive behavior, preserving the
	// baseline the boundary matcher is measured against.
	sub := Analyzer{Substring: true}
	v := sub.AnalyzePolicy("The third partygoers had a great time.", permissions.None)
	if len(v.Hits[policygen.Disclose]) == 0 {
		t.Error("substring mode unexpectedly boundary-checked the phrase")
	}
}

func TestContainsPhrase(t *testing.T) {
	for _, tc := range []struct {
		text, phrase string
		want         bool
	}{
		{"abuse database", "use data", false}, // the motivating false positive
		{"we use data well", "use data", true},
		{"use data", "use data", true},
		{"reuse data", "use data", false},
		{"use database", "use data", false},
		{"third-party", "third-party", true},
		{"non-third-party", "third-party", false},
		{"x third party y third party z", "third party", true},
		{"athird party, third partyb, third party!", "third party", true},
		{"", "use data", false},
	} {
		if got := containsPhrase(tc.text, tc.phrase); got != tc.want {
			t.Errorf("containsPhrase(%q, %q) = %v, want %v", tc.text, tc.phrase, got, tc.want)
		}
	}
}

func TestCaseInsensitivity(t *testing.T) {
	var a Analyzer
	v := a.AnalyzePolicy("WE COLLECT DATA. We Store it. we SHARE nothing. It is USED well.", permissions.None)
	if v.Class != policygen.Complete {
		t.Errorf("case-insensitive matching failed: %s %v", v.Class, v.Covered)
	}
}

func TestGeneratedPoliciesClassifiedCorrectly(t *testing.T) {
	// The validation loop the paper ran manually on 100 policies: every
	// generated policy's analyzer class must equal its ground truth.
	g := policygen.New(42)
	var a Analyzer
	specs := []policygen.Spec{
		{BotName: "A", Covered: nil},
		{BotName: "B", Covered: []policygen.Category{policygen.Collect}},
		{BotName: "C", Covered: []policygen.Category{policygen.Use, policygen.Retain}},
		{BotName: "D", Covered: policygen.AllCategories},
		{BotName: "E", Generic: true, GenericTemplate: 0},
		{BotName: "F", Generic: true, GenericTemplate: 1},
		{BotName: "G", Generic: true, GenericTemplate: 2},
		{BotName: "H", Covered: []policygen.Category{policygen.Disclose}},
	}
	for _, spec := range specs {
		text := g.Generate(spec)
		v := a.AnalyzePolicy(text, permissions.ViewChannel)
		if v.Class != spec.TruthClass() {
			t.Errorf("bot %s: analyzer says %s, truth is %s\npolicy:\n%s\nhits: %v",
				spec.BotName, v.Class, spec.TruthClass(), text, v.Hits)
		}
	}
}

func TestHundredPolicyValidation(t *testing.T) {
	// Random 100-policy sample, zero misclassifications — matching the
	// paper's §4.2 manual validation outcome.
	g := policygen.New(2022)
	var a Analyzer
	mis := 0
	for i := 0; i < 100; i++ {
		var covered []policygen.Category
		for _, c := range policygen.AllCategories {
			if (i>>uint(c))&1 == 1 {
				covered = append(covered, c)
			}
		}
		spec := policygen.Spec{BotName: fmt.Sprintf("bot%d", i), Covered: covered, Generic: i%7 == 6}
		spec.GenericTemplate = i
		v := a.AnalyzePolicy(g.Generate(spec), permissions.ViewChannel)
		if v.Class != spec.TruthClass() {
			mis++
		}
	}
	if mis != 0 {
		t.Errorf("misclassified %d/100 policies, paper's validation found 0", mis)
	}
}

func TestResultAggregation(t *testing.T) {
	var a Analyzer
	var r Result
	r.Add(a.AnalyzePolicy("", permissions.None))
	r.Add(a.AnalyzePolicy("we collect data", permissions.None))
	r.Add(a.AnalyzePolicy("we collect, use, store, and share data", permissions.None))
	if r.Total != 3 || r.Broken != 1 || r.Partial != 1 || r.Complete != 1 || r.WithPolicy != 2 {
		t.Errorf("aggregate = %+v", r)
	}
	if pct := r.BrokenPct(); pct < 33.2 || pct > 33.4 {
		t.Errorf("BrokenPct = %f", pct)
	}
	var empty Result
	if empty.BrokenPct() != 0 {
		t.Error("empty BrokenPct should be 0")
	}
}

func TestUndisclosedPermsExpansion(t *testing.T) {
	var a Analyzer
	v := a.AnalyzePolicy("", permissions.Administrator)
	// Administrator implies every data-exposing permission.
	if len(v.UndisclosedPerms) < 5 {
		t.Errorf("admin undisclosed perms = %v", v.UndisclosedPerms)
	}
	v2 := a.AnalyzePolicy("", permissions.SendMessages)
	if len(v2.UndisclosedPerms) != 0 {
		t.Errorf("send-only bot should expose nothing: %v", v2.UndisclosedPerms)
	}
}
