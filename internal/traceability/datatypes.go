package traceability

import (
	"sort"
	"strings"

	"repro/internal/permissions"
	"repro/internal/policygen"
)

// The paper's §5 notes that existing NLP policy tools could not be
// reused "because their ontologies do not cover all the data types in
// this new ecosystem". This file contributes that missing piece: a
// small ontology mapping chatbot permissions to the user-data types
// they expose, with surface forms for matching policy text, enabling a
// finer-grained audit than the four-category keyword classes — does the
// policy account for each specific data type the bot can reach?

// DataTypeEntry is one ontology row.
type DataTypeEntry struct {
	Type permissions.Permission
	// Data is the canonical data type exposed.
	Data policygen.DataType
	// Surface lists phrases a policy may use to refer to the data.
	Surface []string
}

// Ontology maps data-exposing permissions to data types and their
// textual surface forms in this ecosystem's policies.
var Ontology = []DataTypeEntry{
	{permissions.ViewChannel, policygen.DataMessageContent,
		[]string{"message content", "messages", "chat content", "conversations"}},
	{permissions.ReadMessageHistory, policygen.DataMessageMetadata,
		[]string{"message metadata", "message history", "chat history", "timestamps"}},
	{permissions.Connect, policygen.DataVoiceMetadata,
		[]string{"voice metadata", "voice activity", "voice channel"}},
	{permissions.AttachFiles, policygen.DataAttachments,
		[]string{"uploaded files", "attachments", "files you share", "documents"}},
	{permissions.ManageGuild, policygen.DataGuildInfo,
		[]string{"server configuration", "server settings", "guild settings"}},
	{permissions.ViewAuditLog, policygen.DataCommandUsage,
		[]string{"command usage", "usage statistics", "usage data", "audit log"}},
}

// DataTypeFinding is one per-data-type verdict.
type DataTypeFinding struct {
	Perm      permissions.Permission
	Data      policygen.DataType
	Exposed   bool // the bot's permission set reaches this data
	Mentioned bool // the policy text refers to it
}

// Gap reports whether the data is exposed but never mentioned — the
// specific disclosure failure the ontology audit surfaces.
func (f DataTypeFinding) Gap() bool { return f.Exposed && !f.Mentioned }

// AuditDataTypes cross-references a bot's permission set with its
// policy text through the ontology. Findings are ordered by permission
// bit for determinism. Administrator (which reaches everything) marks
// every data type exposed, mirroring Effective().
func AuditDataTypes(policy string, requested permissions.Permission) []DataTypeFinding {
	lower := strings.ToLower(policy)
	eff := requested.Effective()
	out := make([]DataTypeFinding, 0, len(Ontology))
	for _, row := range Ontology {
		f := DataTypeFinding{Perm: row.Type, Data: row.Data}
		f.Exposed = eff.Has(row.Type)
		for _, s := range row.Surface {
			if strings.Contains(lower, s) {
				f.Mentioned = true
				break
			}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Perm < out[j].Perm })
	return out
}

// DataTypeGapCount summarizes AuditDataTypes: how many exposed data
// types the policy never mentions.
func DataTypeGapCount(policy string, requested permissions.Permission) int {
	n := 0
	for _, f := range AuditDataTypes(policy, requested) {
		if f.Gap() {
			n++
		}
	}
	return n
}

// DataTypeResult aggregates the ontology audit over a population.
type DataTypeResult struct {
	Bots int
	// GapsPerBot histograms gap counts: index = number of unmentioned
	// exposed data types.
	GapsPerBot map[int]int
	// ByData counts, per data type, bots exposing it vs mentioning it.
	ExposedByData   map[policygen.DataType]int
	MentionedByData map[policygen.DataType]int
}

// NewDataTypeResult creates an empty aggregate.
func NewDataTypeResult() *DataTypeResult {
	return &DataTypeResult{
		GapsPerBot:      make(map[int]int),
		ExposedByData:   make(map[policygen.DataType]int),
		MentionedByData: make(map[policygen.DataType]int),
	}
}

// Add folds one bot into the aggregate.
func (r *DataTypeResult) Add(policy string, requested permissions.Permission) {
	r.Bots++
	gaps := 0
	for _, f := range AuditDataTypes(policy, requested) {
		if f.Exposed {
			r.ExposedByData[f.Data]++
		}
		if f.Mentioned {
			r.MentionedByData[f.Data]++
		}
		if f.Gap() {
			gaps++
		}
	}
	r.GapsPerBot[gaps]++
}

// FullyAccounted returns how many bots mention every data type they
// expose (gap count zero).
func (r *DataTypeResult) FullyAccounted() int { return r.GapsPerBot[0] }
