// Package traceability implements the paper's keyword-based
// traceability analysis (§3): it compares the data permissions a
// chatbot requests with the data practices its privacy policy
// describes, and classifies disclosure as complete, partial, or broken.
//
// A policy "describes" a category (Collect, Use, Retain, Disclose) when
// the text contains one of the category's keywords or synonyms on a
// word boundary. A policy covering all four categories is complete; at
// least one, partial; none — or no policy at all — broken.
package traceability

import (
	"context"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/obs/trace"
	"repro/internal/permissions"
	"repro/internal/policygen"
)

// Verdict is the analyzer's output for one chatbot.
type Verdict struct {
	// Class is the paper's three-way classification.
	Class policygen.Class
	// HasPolicy is false when no policy document was reachable — the
	// broken-by-absence case that dominates the paper's Table 2.
	HasPolicy bool
	// Covered lists the categories whose keywords appeared.
	Covered []policygen.Category
	// Hits maps each covered category to the keywords that matched.
	Hits map[policygen.Category][]string
	// UndisclosedPerms lists requested permissions that expose user
	// data while the policy describes no collection at all.
	UndisclosedPerms []permissions.Permission
}

// dataExposing is the subset of permissions whose grant gives the bot
// access to user data that a policy ought to account for.
var dataExposing = []permissions.Permission{
	permissions.Administrator,
	permissions.ViewChannel,
	permissions.ReadMessageHistory,
	permissions.ViewAuditLog,
	permissions.ManageMessages,
	permissions.AttachFiles,
	permissions.Connect,
}

// Analyzer performs keyword-based traceability analysis. The zero value
// uses the paper's category keyword sets; tests can install custom
// matchers for the ablation benchmarks.
type Analyzer struct {
	// Substring, when true, degrades matching to naive
	// strings.Contains — the ablation baseline showing why
	// word-boundary matching matters ("used" inside "caused", etc.).
	Substring bool
}

// tokenize lower-cases and splits text into words, stripping
// punctuation, so keyword matching is boundary-exact.
func tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-'
	})
}

// isWordRune mirrors tokenize's definition of a word character, so
// phrase boundaries and single-word boundaries agree.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-'
}

// containsPhrase reports whether phrase occurs in the lower-cased text
// on word boundaries: the characters adjacent to the occurrence must
// not be word characters, so "use data" does not match inside "abuse
// database" and "third party" does not match "third partygoers".
func containsPhrase(lower, phrase string) bool {
	for start := 0; ; {
		i := strings.Index(lower[start:], phrase)
		if i < 0 {
			return false
		}
		i += start
		before, _ := utf8.DecodeLastRuneInString(lower[:i])
		after, _ := utf8.DecodeRuneInString(lower[i+len(phrase):])
		if (i == 0 || !isWordRune(before)) &&
			(i+len(phrase) == len(lower) || !isWordRune(after)) {
			return true
		}
		start = i + 1
	}
}

// matchCategory returns the keywords of category c found in text.
func (a *Analyzer) matchCategory(c policygen.Category, lower string, words map[string]bool) []string {
	var hits []string
	for _, kw := range c.Keywords() {
		if a.Substring {
			// Ablation baseline: everything is a naive substring scan.
			if strings.Contains(lower, kw) {
				hits = append(hits, kw)
			}
			continue
		}
		if strings.ContainsRune(kw, ' ') || strings.ContainsRune(kw, '-') {
			// Phrase keywords scan the raw lower-cased text (tokenize
			// would split them), but only on word boundaries.
			if containsPhrase(lower, kw) {
				hits = append(hits, kw)
			}
			continue
		}
		if words[kw] {
			hits = append(hits, kw)
		}
	}
	return hits
}

// AnalyzePolicyContext is AnalyzePolicy recorded as a policy_audit
// sub-operation on the context's trace scope.
func (a *Analyzer) AnalyzePolicyContext(ctx context.Context, policy string, requested permissions.Permission) Verdict {
	defer trace.StartOp(ctx, "policy_audit")()
	return a.AnalyzePolicy(policy, requested)
}

// AnalyzePolicy classifies one policy document against the permissions
// its chatbot requests. An empty policy string means the document was
// missing or unreachable.
func (a *Analyzer) AnalyzePolicy(policy string, requested permissions.Permission) Verdict {
	v := Verdict{Hits: make(map[policygen.Category][]string)}
	if strings.TrimSpace(policy) == "" {
		v.Class = policygen.Broken
		v.UndisclosedPerms = exposedBy(requested)
		return v
	}
	v.HasPolicy = true
	lower := strings.ToLower(policy)
	words := make(map[string]bool)
	for _, w := range tokenize(policy) {
		words[w] = true
	}
	for _, c := range policygen.AllCategories {
		if hits := a.matchCategory(c, lower, words); len(hits) > 0 {
			v.Covered = append(v.Covered, c)
			v.Hits[c] = hits
		}
	}
	switch len(v.Covered) {
	case 0:
		v.Class = policygen.Broken
	case len(policygen.AllCategories):
		v.Class = policygen.Complete
	default:
		v.Class = policygen.Partial
	}
	collectCovered := len(v.Hits[policygen.Collect]) > 0
	if !collectCovered {
		v.UndisclosedPerms = exposedBy(requested)
	}
	return v
}

func exposedBy(requested permissions.Permission) []permissions.Permission {
	var out []permissions.Permission
	eff := requested.Effective()
	for _, p := range dataExposing {
		if eff.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

// Result aggregates a population of verdicts into the shape of the
// paper's Table 2 discussion.
type Result struct {
	Total    int
	Broken   int
	Partial  int
	Complete int
	// WithPolicy counts bots whose policy document was reachable.
	WithPolicy int
}

// Add folds one verdict into the aggregate.
func (r *Result) Add(v Verdict) {
	r.Total++
	if v.HasPolicy {
		r.WithPolicy++
	}
	switch v.Class {
	case policygen.Broken:
		r.Broken++
	case policygen.Partial:
		r.Partial++
	case policygen.Complete:
		r.Complete++
	}
}

// BrokenPct returns the percentage of bots with broken traceability —
// the paper's headline 95.67%.
func (r *Result) BrokenPct() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Broken) / float64(r.Total)
}
