// Package htmlparse is a small, dependency-free HTML parser: a
// tokenizer, a tolerant tree builder, and element locators in the style
// of Selenium's locator strategies (by id, tag, class, attribute, text,
// and a CSS-lite selector language). The paper's scraper drove a
// browser; our scraper drives this parser over the HTML the simulated
// listing service returns, exercising the same extraction logic.
package htmlparse

import (
	"strings"
	"unicode"
)

// TokenType classifies lexer output.
type TokenType int

// Token types.
const (
	TokenText TokenType = iota
	TokenStartTag
	TokenEndTag
	TokenSelfClosing
	TokenComment
	TokenDoctype
)

// Attr is one attribute on a start tag.
type Attr struct {
	Key string
	Val string
}

// Token is one lexical unit of HTML.
type Token struct {
	Type  TokenType
	Data  string // tag name (lower-cased) or text/comment content
	Attrs []Attr
}

// voidElements never take end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow everything until their literal end tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// Tokenizer lexes HTML.
type Tokenizer struct {
	src string
	pos int
	// pending end-tag for raw text elements
	rawEnd string
}

// NewTokenizer creates a tokenizer over src.
func NewTokenizer(src string) *Tokenizer { return &Tokenizer{src: src} }

// Next returns the next token, or false when input is exhausted.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.rawEnd != "" {
		return z.rawText(), true
	}
	if z.src[z.pos] == '<' {
		return z.tag()
	}
	return z.text(), true
}

func (z *Tokenizer) text() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TokenText, Data: UnescapeEntities(z.src[start:z.pos])}
}

// rawText consumes until the stored end tag (case-insensitive).
func (z *Tokenizer) rawText() Token {
	end := "</" + z.rawEnd
	lower := strings.ToLower(z.src[z.pos:])
	idx := strings.Index(lower, end)
	if idx < 0 {
		t := Token{Type: TokenText, Data: z.src[z.pos:]}
		z.pos = len(z.src)
		z.rawEnd = ""
		return t
	}
	t := Token{Type: TokenText, Data: z.src[z.pos : z.pos+idx]}
	z.pos += idx
	z.rawEnd = ""
	return t
}

func (z *Tokenizer) tag() (Token, bool) {
	// comment?
	if strings.HasPrefix(z.src[z.pos:], "<!--") {
		end := strings.Index(z.src[z.pos+4:], "-->")
		if end < 0 {
			t := Token{Type: TokenComment, Data: z.src[z.pos+4:]}
			z.pos = len(z.src)
			return t, true
		}
		t := Token{Type: TokenComment, Data: z.src[z.pos+4 : z.pos+4+end]}
		z.pos += 4 + end + 3
		return t, true
	}
	// doctype or other declaration?
	if strings.HasPrefix(z.src[z.pos:], "<!") {
		end := strings.IndexByte(z.src[z.pos:], '>')
		if end < 0 {
			z.pos = len(z.src)
			return Token{Type: TokenDoctype, Data: ""}, true
		}
		t := Token{Type: TokenDoctype, Data: strings.TrimSpace(z.src[z.pos+2 : z.pos+end])}
		z.pos += end + 1
		return t, true
	}
	// end tag?
	if strings.HasPrefix(z.src[z.pos:], "</") {
		end := strings.IndexByte(z.src[z.pos:], '>')
		if end < 0 {
			z.pos = len(z.src)
			return Token{}, false
		}
		name := strings.ToLower(strings.TrimSpace(z.src[z.pos+2 : z.pos+end]))
		z.pos += end + 1
		return Token{Type: TokenEndTag, Data: name}, true
	}
	// start tag
	end := strings.IndexByte(z.src[z.pos:], '>')
	if end < 0 {
		// Trailing garbage; emit as text.
		t := Token{Type: TokenText, Data: z.src[z.pos:]}
		z.pos = len(z.src)
		return t, true
	}
	inner := z.src[z.pos+1 : z.pos+end]
	z.pos += end + 1
	selfClose := strings.HasSuffix(inner, "/")
	if selfClose {
		inner = inner[:len(inner)-1]
	}
	name, attrs := parseTagBody(inner)
	if name == "" {
		return Token{Type: TokenText, Data: "<" + inner + ">"}, true
	}
	typ := TokenStartTag
	if selfClose || voidElements[name] {
		typ = TokenSelfClosing
	}
	if typ == TokenStartTag && rawTextElements[name] {
		z.rawEnd = name
	}
	return Token{Type: typ, Data: name, Attrs: attrs}, true
}

// parseTagBody splits "a href='x' class=b" into the tag name and attrs.
func parseTagBody(s string) (string, []Attr) {
	i := 0
	// tag name
	for i < len(s) && !unicode.IsSpace(rune(s[i])) {
		i++
	}
	name := strings.ToLower(s[:i])
	var attrs []Attr
	for i < len(s) {
		// skip whitespace
		for i < len(s) && unicode.IsSpace(rune(s[i])) {
			i++
		}
		if i >= len(s) {
			break
		}
		// key
		ks := i
		for i < len(s) && s[i] != '=' && !unicode.IsSpace(rune(s[i])) {
			i++
		}
		key := strings.ToLower(s[ks:i])
		if key == "" {
			i++
			continue
		}
		// skip whitespace before '='
		for i < len(s) && unicode.IsSpace(rune(s[i])) {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			attrs = append(attrs, Attr{Key: key, Val: ""})
			continue
		}
		i++ // consume '='
		for i < len(s) && unicode.IsSpace(rune(s[i])) {
			i++
		}
		var val string
		if i < len(s) && (s[i] == '"' || s[i] == '\'') {
			q := s[i]
			i++
			vs := i
			for i < len(s) && s[i] != q {
				i++
			}
			val = s[vs:i]
			if i < len(s) {
				i++ // closing quote
			}
		} else {
			vs := i
			for i < len(s) && !unicode.IsSpace(rune(s[i])) {
				i++
			}
			val = s[vs:i]
		}
		attrs = append(attrs, Attr{Key: key, Val: UnescapeEntities(val)})
	}
	return name, attrs
}

// entity table for the common named entities listings emit.
var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "copy": "©", "mdash": "—", "ndash": "–",
	"hellip": "…", "rsquo": "’", "lsquo": "‘",
}

// UnescapeEntities resolves named and numeric character references.
// Unknown references are left verbatim, as browsers do.
func UnescapeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if rep, ok := entities[ref]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		if strings.HasPrefix(ref, "#") {
			if r := parseNumericRef(ref[1:]); r > 0 {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func parseNumericRef(s string) rune {
	base := 10
	if len(s) > 1 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	var n int64
	for _, c := range s {
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return -1
		}
		n = n*int64(base) + d
		if n > 0x10FFFF {
			return -1
		}
	}
	if n == 0 {
		return -1
	}
	return rune(n)
}

// EscapeText escapes text for safe inclusion in HTML element content.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes text for safe inclusion in a double-quoted
// attribute value.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
