package htmlparse

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser's crash-freedom and two structural
// properties on arbitrary input: the tree is well-parented, and
// re-serializing text through EscapeText round-trips.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"plain text",
		"<div><p>nested</p></div>",
		"<a href='x' b=\"y\" c>link</a>",
		"<<<>>>",
		"<script>if (a<b) {}</script>",
		"<!-- comment --><!DOCTYPE html>",
		"<img src=x><br/><input value=y>",
		"&amp;&#65;&#x41;&bogus;",
		"<div id=\"a\" class=\"b c\"><span class=c>t</span></div>",
		"</closing-only>",
		"<p>unterminated",
		strings.Repeat("<div>", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		if doc == nil {
			t.Fatal("nil document")
		}
		// Well-parented tree.
		doc.Walk(func(n *Node) bool {
			for _, c := range n.Children {
				if c.Parent != n {
					t.Fatalf("child %v has wrong parent", c)
				}
			}
			return true
		})
		// Selectors never panic.
		doc.Select("div > span.c[id]")
		doc.ByText("x")
		// Escape/unescape round-trip for any text.
		if got := UnescapeEntities(EscapeText(src)); got != src {
			t.Fatalf("escape round-trip changed text: %q -> %q", src, got)
		}
	})
}

// FuzzSelector asserts the selector compiler is total: any input either
// compiles or is rejected, never panics, and matching never crashes.
func FuzzSelector(f *testing.F) {
	for _, s := range []string{"a", "#id", ".cls", "a.b#c[d=e]", "ul > li", "a[", "%", "> >", "a >"} {
		f.Add(s)
	}
	doc := Parse(`<div id="a" class="x"><p class="y z"><a href="u">t</a></p></div>`)
	f.Fuzz(func(t *testing.T, sel string) {
		doc.Select(sel)
		doc.SelectFirst(sel)
	})
}
