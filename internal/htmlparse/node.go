package htmlparse

import "strings"

// NodeType classifies tree nodes.
type NodeType int

// Node types.
const (
	NodeDocument NodeType = iota
	NodeElement
	NodeText
	NodeComment
)

// Node is one node of the parsed tree.
type Node struct {
	Type     NodeType
	Tag      string // elements: lower-case tag name
	Data     string // text/comment content
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// Parse builds a tolerant DOM from HTML source. It never fails:
// malformed input degrades to text nodes or auto-closed elements, the
// way the paper's scraper had to survive arbitrary listing markup.
func Parse(src string) *Node {
	doc := &Node{Type: NodeDocument}
	stack := []*Node{doc}
	z := NewTokenizer(src)
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		top := stack[len(stack)-1]
		switch tok.Type {
		case TokenText:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			top.Children = append(top.Children, &Node{Type: NodeText, Data: tok.Data, Parent: top})
		case TokenComment:
			top.Children = append(top.Children, &Node{Type: NodeComment, Data: tok.Data, Parent: top})
		case TokenDoctype:
			// ignored
		case TokenSelfClosing:
			n := &Node{Type: NodeElement, Tag: tok.Data, Attrs: tok.Attrs, Parent: top}
			top.Children = append(top.Children, n)
		case TokenStartTag:
			n := &Node{Type: NodeElement, Tag: tok.Data, Attrs: tok.Attrs, Parent: top}
			top.Children = append(top.Children, n)
			stack = append(stack, n)
		case TokenEndTag:
			// Pop to the matching open element if one exists; else drop.
			for i := len(stack) - 1; i > 0; i-- {
				if stack[i].Tag == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(key string) (string, bool) {
	key = strings.ToLower(key)
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the attribute value or a default.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.Attr(key); ok {
		return v
	}
	return def
}

// ID returns the element's id attribute.
func (n *Node) ID() string { return n.AttrOr("id", "") }

// HasClass reports whether the element's class list contains name.
func (n *Node) HasClass(name string) bool {
	cls, ok := n.Attr("class")
	if !ok {
		return false
	}
	for _, c := range strings.Fields(cls) {
		if c == name {
			return true
		}
	}
	return false
}

// Text returns the concatenated, whitespace-normalized text content of
// the subtree.
func (n *Node) Text() string {
	var b strings.Builder
	n.collectText(&b)
	return strings.Join(strings.Fields(b.String()), " ")
}

func (n *Node) collectText(b *strings.Builder) {
	if n.Type == NodeText {
		b.WriteString(n.Data)
		b.WriteByte(' ')
	}
	for _, c := range n.Children {
		c.collectText(b)
	}
}

// Walk visits the subtree in document order, stopping if fn returns
// false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// elements returns all element nodes in document order.
func (n *Node) elements() []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type == NodeElement {
			out = append(out, x)
		}
		return true
	})
	return out
}
