package htmlparse

import (
	"errors"
	"strings"
)

// ErrNoSuchElement is returned by Require* helpers when a locator finds
// nothing — named after the Selenium NoSuchElementException the paper's
// scraper had to react to (§3).
var ErrNoSuchElement = errors.New("htmlparse: no such element")

// ByID finds the first element with the given id.
func (n *Node) ByID(id string) *Node {
	var found *Node
	n.Walk(func(x *Node) bool {
		if x.Type == NodeElement && x.ID() == id {
			found = x
			return false
		}
		return true
	})
	return found
}

// ByTag finds every element with the given tag name.
func (n *Node) ByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type == NodeElement && x.Tag == tag {
			out = append(out, x)
		}
		return true
	})
	return out
}

// ByClass finds every element carrying the given class.
func (n *Node) ByClass(class string) []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type == NodeElement && x.HasClass(class) {
			out = append(out, x)
		}
		return true
	})
	return out
}

// ByAttr finds every element whose attribute key equals val. An empty
// val matches mere presence of the attribute.
func (n *Node) ByAttr(key, val string) []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type != NodeElement {
			return true
		}
		if v, ok := x.Attr(key); ok && (val == "" || v == val) {
			out = append(out, x)
		}
		return true
	})
	return out
}

// ByText finds every element whose normalized text content contains
// needle (case-insensitive) — Selenium's partial link text strategy.
func (n *Node) ByText(needle string) []*Node {
	needle = strings.ToLower(needle)
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type == NodeElement && strings.Contains(strings.ToLower(x.Text()), needle) {
			out = append(out, x)
		}
		return true
	})
	return out
}

// simpleSelector is one compound selector: tag#id.class[attr=val].
type simpleSelector struct {
	tag     string
	id      string
	classes []string
	attrs   []Attr
	child   bool // true when joined to the previous selector with '>'
}

func (s simpleSelector) matches(n *Node) bool {
	if n.Type != NodeElement {
		return false
	}
	if s.tag != "" && s.tag != n.Tag {
		return false
	}
	if s.id != "" && n.ID() != s.id {
		return false
	}
	for _, c := range s.classes {
		if !n.HasClass(c) {
			return false
		}
	}
	for _, a := range s.attrs {
		v, ok := n.Attr(a.Key)
		if !ok {
			return false
		}
		if a.Val != "" && v != a.Val {
			return false
		}
	}
	return true
}

// parseSelector compiles a CSS-lite selector: compound selectors joined
// by descendant (space) or child (>) combinators. Supported atoms:
// tag, #id, .class, [attr], [attr=val].
func parseSelector(sel string) ([]simpleSelector, error) {
	fields := strings.Fields(sel)
	if len(fields) == 0 {
		return nil, errors.New("htmlparse: empty selector")
	}
	var out []simpleSelector
	childNext := false
	for _, f := range fields {
		if f == ">" {
			if len(out) == 0 {
				return nil, errors.New("htmlparse: selector cannot start with '>'")
			}
			childNext = true
			continue
		}
		s, err := parseCompound(f)
		if err != nil {
			return nil, err
		}
		s.child = childNext
		childNext = false
		out = append(out, s)
	}
	if childNext {
		return nil, errors.New("htmlparse: dangling '>' in selector")
	}
	return out, nil
}

func parseCompound(f string) (simpleSelector, error) {
	var s simpleSelector
	i := 0
	readIdent := func() string {
		start := i
		for i < len(f) && f[i] != '#' && f[i] != '.' && f[i] != '[' {
			i++
		}
		return f[start:i]
	}
	if i < len(f) && f[i] != '#' && f[i] != '.' && f[i] != '[' {
		s.tag = strings.ToLower(readIdent())
	}
	for i < len(f) {
		switch f[i] {
		case '#':
			i++
			s.id = readIdent()
		case '.':
			i++
			s.classes = append(s.classes, readIdent())
		case '[':
			end := strings.IndexByte(f[i:], ']')
			if end < 0 {
				return s, errors.New("htmlparse: unterminated attribute selector")
			}
			body := f[i+1 : i+end]
			i += end + 1
			if eq := strings.IndexByte(body, '='); eq >= 0 {
				val := strings.Trim(body[eq+1:], `"'`)
				s.attrs = append(s.attrs, Attr{Key: strings.ToLower(body[:eq]), Val: val})
			} else {
				s.attrs = append(s.attrs, Attr{Key: strings.ToLower(body)})
			}
		default:
			return s, errors.New("htmlparse: bad selector fragment " + f)
		}
	}
	return s, nil
}

// Select returns every element matching the CSS-lite selector, in
// document order. Invalid selectors return nil.
func (n *Node) Select(sel string) []*Node {
	chain, err := parseSelector(sel)
	if err != nil {
		return nil
	}
	current := []*Node{n}
	for _, s := range chain {
		var next []*Node
		seen := make(map[*Node]bool)
		for _, base := range current {
			candidates := selectorCandidates(base, s.child)
			for _, c := range candidates {
				if s.matches(c) && !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

func selectorCandidates(base *Node, childOnly bool) []*Node {
	if childOnly {
		var out []*Node
		for _, c := range base.Children {
			if c.Type == NodeElement {
				out = append(out, c)
			}
		}
		return out
	}
	var out []*Node
	for _, c := range base.Children {
		c.Walk(func(x *Node) bool {
			if x.Type == NodeElement {
				out = append(out, x)
			}
			return true
		})
	}
	return out
}

// SelectFirst returns the first selector match or nil.
func (n *Node) SelectFirst(sel string) *Node {
	matches := n.Select(sel)
	if len(matches) == 0 {
		return nil
	}
	return matches[0]
}

// RequireFirst returns the first match or ErrNoSuchElement, mirroring
// how the paper's scraper treats a missing element as an exception to
// react to rather than a crash.
func (n *Node) RequireFirst(sel string) (*Node, error) {
	if m := n.SelectFirst(sel); m != nil {
		return m, nil
	}
	return nil, ErrNoSuchElement
}
