package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

const sample = `<!DOCTYPE html>
<html>
<head><title>Bot listing</title><meta charset="utf-8"></head>
<body>
  <div id="header" class="nav top">
    <a href="/bots?page=2" class="next">Next &raquo;</a>
  </div>
  <ul class="bot-list">
    <li class="bot-card" data-bot-id="101">
      <span class="bot-name">Melonian</span>
      <a class="invite" href="/oauth?bot_id=101&amp;permissions=8">Invite</a>
      <a class="gh" href="https://github.example/dev/melonian">Source</a>
    </li>
    <li class="bot-card" data-bot-id="102">
      <span class="bot-name">HelperBot</span>
      <a class="invite" href="/oauth?bot_id=102&amp;permissions=3072">Invite</a>
    </li>
  </ul>
  <script>var x = "<li>not real</li>";</script>
  <!-- trailing comment -->
  <p>Total: 2 bots &amp; counting&#33;</p>
</body>
</html>`

func TestParseBasicStructure(t *testing.T) {
	doc := Parse(sample)
	title := doc.SelectFirst("title")
	if title == nil || title.Text() != "Bot listing" {
		t.Fatalf("title = %v", title)
	}
	cards := doc.ByClass("bot-card")
	if len(cards) != 2 {
		t.Fatalf("bot cards = %d, want 2", len(cards))
	}
	if id, _ := cards[0].Attr("data-bot-id"); id != "101" {
		t.Errorf("first card id = %q", id)
	}
}

func TestEntityHandling(t *testing.T) {
	doc := Parse(sample)
	p := doc.SelectFirst("p")
	if p == nil {
		t.Fatal("no <p>")
	}
	if got := p.Text(); got != "Total: 2 bots & counting!" {
		t.Errorf("entity text = %q", got)
	}
	// Entities inside attribute values.
	inv := doc.ByClass("invite")[0]
	href, _ := inv.Attr("href")
	if href != "/oauth?bot_id=101&permissions=8" {
		t.Errorf("href = %q", href)
	}
}

func TestScriptRawText(t *testing.T) {
	doc := Parse(sample)
	// The <li> inside the script must not become an element.
	if cards := doc.ByClass("bot-card"); len(cards) != 2 {
		t.Errorf("script content leaked elements: %d cards", len(cards))
	}
	script := doc.SelectFirst("script")
	if script == nil || !strings.Contains(script.Text(), "not real") {
		t.Error("script text lost")
	}
}

func TestByLocators(t *testing.T) {
	doc := Parse(sample)
	if n := doc.ByID("header"); n == nil || !n.HasClass("nav") || !n.HasClass("top") {
		t.Errorf("ByID/HasClass failed: %v", n)
	}
	if n := doc.ByID("missing"); n != nil {
		t.Error("ByID found a ghost")
	}
	if as := doc.ByTag("a"); len(as) != 4 {
		t.Errorf("ByTag(a) = %d, want 4", len(as))
	}
	if ns := doc.ByAttr("data-bot-id", "102"); len(ns) != 1 || ns[0].Text() != "HelperBot Invite" {
		t.Errorf("ByAttr = %v", ns)
	}
	if ns := doc.ByAttr("data-bot-id", ""); len(ns) != 2 {
		t.Errorf("ByAttr presence = %d", len(ns))
	}
	if ns := doc.ByText("melonian"); len(ns) == 0 {
		t.Error("ByText case-insensitive search failed")
	}
}

func TestSelectors(t *testing.T) {
	doc := Parse(sample)
	cases := []struct {
		sel  string
		want int
	}{
		{"li.bot-card", 2},
		{"ul.bot-list > li", 2},
		{"li a.invite", 2},
		{"#header a.next", 1},
		{"a[href]", 4},
		{`a[class=gh]`, 1},
		{"li.bot-card span.bot-name", 2},
		{"div.missing", 0},
		{"ul > span", 0}, // span is a grandchild, not a child
	}
	for _, c := range cases {
		if got := len(doc.Select(c.sel)); got != c.want {
			t.Errorf("Select(%q) = %d, want %d", c.sel, got, c.want)
		}
	}
	if n := doc.SelectFirst("span.bot-name"); n == nil || n.Text() != "Melonian" {
		t.Errorf("SelectFirst = %v", n)
	}
	if _, err := doc.RequireFirst("div#nope"); err != ErrNoSuchElement {
		t.Errorf("RequireFirst missing err = %v", err)
	}
	if n, err := doc.RequireFirst("title"); err != nil || n == nil {
		t.Errorf("RequireFirst present = %v, %v", n, err)
	}
}

func TestSelectorParsingErrors(t *testing.T) {
	doc := Parse(sample)
	for _, sel := range []string{"", "> li", "li >", "li[unclosed", "li%bad"} {
		if got := doc.Select(sel); got != nil {
			t.Errorf("Select(%q) should return nil, got %d nodes", sel, len(got))
		}
	}
}

func TestMalformedHTMLTolerance(t *testing.T) {
	// Unclosed tags, stray end tags, attribute soup.
	doc := Parse(`<div><p>one<p>two</div></span><a href=unquoted disabled>link</a><br><img src="x.png">`)
	if as := doc.ByTag("a"); len(as) != 1 {
		t.Fatalf("anchors = %d", len(as))
	}
	a := doc.ByTag("a")[0]
	if href, _ := a.Attr("href"); href != "unquoted" {
		t.Errorf("unquoted attr = %q", href)
	}
	if _, ok := a.Attr("disabled"); !ok {
		t.Error("bare attribute lost")
	}
	if imgs := doc.ByTag("img"); len(imgs) != 1 {
		t.Error("void element mishandled")
	}
	// Deeply broken input must not panic and must keep text.
	doc2 := Parse("<<<>>> &unknown; <b>bold")
	if !strings.Contains(doc2.Text(), "&unknown;") {
		t.Errorf("unknown entity mangled: %q", doc2.Text())
	}
}

func TestVoidAndSelfClosing(t *testing.T) {
	doc := Parse(`<div><br/><hr><input type="text" value="v"/><span>after</span></div>`)
	div := doc.SelectFirst("div")
	if div == nil {
		t.Fatal("no div")
	}
	// span must be a child of div, not of input.
	span := doc.SelectFirst("div > span")
	if span == nil {
		t.Fatal("void elements swallowed following siblings")
	}
	input := doc.SelectFirst("input")
	if v, _ := input.Attr("value"); v != "v" {
		t.Errorf("input value = %q", v)
	}
}

func TestCommentsPreserved(t *testing.T) {
	doc := Parse("<div><!-- hidden note --></div>")
	var comment string
	doc.Walk(func(n *Node) bool {
		if n.Type == NodeComment {
			comment = n.Data
		}
		return true
	})
	if !strings.Contains(comment, "hidden note") {
		t.Errorf("comment = %q", comment)
	}
}

func TestNumericEntities(t *testing.T) {
	cases := map[string]string{
		"&#65;":      "A",
		"&#x41;":     "A",
		"&#x1F600;":  "\U0001F600",
		"&#0;":       "&#0;", // invalid: left verbatim
		"&#xZZ;":     "&#xZZ;",
		"&notreal;":  "&notreal;",
		"&amp;&lt;":  "&<",
		"100 &amp 5": "100 &amp 5", // missing semicolon
	}
	for in, want := range cases {
		if got := UnescapeEntities(in); got != want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return UnescapeEntities(EscapeText(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool {
		return UnescapeEntities(EscapeAttr(s)) == s
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		doc.Text()
		doc.Select("a[href]")
		return doc != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTextNormalization(t *testing.T) {
	doc := Parse("<div>  lots \n\t of    <b>whitespace</b>  here </div>")
	if got := doc.Text(); got != "lots of whitespace here" {
		t.Errorf("Text() = %q", got)
	}
}

func TestAttrHelpers(t *testing.T) {
	doc := Parse(`<a HREF="/x" Class="big red">t</a>`)
	a := doc.ByTag("a")[0]
	if href, ok := a.Attr("href"); !ok || href != "/x" {
		t.Errorf("case-insensitive attr = %q, %v", href, ok)
	}
	if a.AttrOr("missing", "dflt") != "dflt" {
		t.Error("AttrOr default failed")
	}
	if !a.HasClass("red") || a.HasClass("blue") {
		t.Error("HasClass on multi-class failed")
	}
}
