// Package dataset persists and reloads pipeline artifacts as JSON Lines
// — the measurement-study habit of snapshotting each stage so analyses
// can be re-run without re-crawling. Records round-trip losslessly;
// derived results (Figure 3 series, Table 2, code analysis, honeypot
// verdicts) export for downstream tooling.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/canary"
	"repro/internal/codeanalysis"
	"repro/internal/honeypot"
	"repro/internal/permissions"
	"repro/internal/scraper"
)

// recordJSON is the stable wire form of a scraper.Record.
type recordJSON struct {
	ID          int      `json:"id"`
	Name        string   `json:"name"`
	Tags        []string `json:"tags,omitempty"`
	Description string   `json:"description,omitempty"`
	GuildCount  int      `json:"guild_count"`
	Votes       int      `json:"votes"`
	Prefix      string   `json:"prefix,omitempty"`
	Commands    []string `json:"commands,omitempty"`
	Developers  []string `json:"developers,omitempty"`

	HasWebsite bool   `json:"has_website,omitempty"`
	GitHubURL  string `json:"github_url,omitempty"`

	PermsValid    bool     `json:"perms_valid"`
	Perms         string   `json:"permissions,omitempty"` // decimal bitfield
	PermNames     []string `json:"permission_names,omitempty"`
	InvalidReason string   `json:"invalid_reason,omitempty"`

	PolicyLinkFound bool   `json:"policy_link_found,omitempty"`
	PolicyLinkDead  bool   `json:"policy_link_dead,omitempty"`
	PolicyText      string `json:"policy_text,omitempty"`
}

func toJSON(r *scraper.Record) recordJSON {
	out := recordJSON{
		ID: r.ID, Name: r.Name, Tags: r.Tags, Description: r.Description,
		GuildCount: r.GuildCount, Votes: r.Votes, Prefix: r.Prefix,
		Commands: r.Commands, Developers: r.Developers,
		HasWebsite: r.HasWebsite, GitHubURL: r.GitHubURL,
		PermsValid:      r.PermsValid,
		InvalidReason:   string(r.InvalidReason),
		PolicyLinkFound: r.PolicyLinkFound, PolicyLinkDead: r.PolicyLinkDead,
		PolicyText: r.PolicyText,
	}
	if r.PermsValid {
		out.Perms = r.Perms.Value()
		out.PermNames = r.Perms.Names()
	}
	return out
}

func fromJSON(j recordJSON) (*scraper.Record, error) {
	r := &scraper.Record{
		ID: j.ID, Name: j.Name, Tags: j.Tags, Description: j.Description,
		GuildCount: j.GuildCount, Votes: j.Votes, Prefix: j.Prefix,
		Commands: j.Commands, Developers: j.Developers,
		HasWebsite: j.HasWebsite, GitHubURL: j.GitHubURL,
		PermsValid:      j.PermsValid,
		InvalidReason:   scraper.InvalidReason(j.InvalidReason),
		PolicyLinkFound: j.PolicyLinkFound, PolicyLinkDead: j.PolicyLinkDead,
		PolicyText: j.PolicyText,
	}
	if j.PermsValid {
		p, err := permissions.ParseValue(j.Perms)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", j.ID, err)
		}
		r.Perms = p
	}
	return r, nil
}

// WriteRecords streams records as JSON Lines. Nil records (crawler
// gaps) are skipped.
func WriteRecords(w io.Writer, records []*scraper.Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if r == nil {
			continue
		}
		if err := enc.Encode(toJSON(r)); err != nil {
			return fmt.Errorf("dataset: encode record %d: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// ReadRecords loads a JSON Lines record stream.
func ReadRecords(r io.Reader) ([]*scraper.Record, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []*scraper.Record
	for dec.More() {
		var j recordJSON
		if err := dec.Decode(&j); err != nil {
			return nil, fmt.Errorf("dataset: decode line %d: %w", len(out)+1, err)
		}
		rec, err := fromJSON(j)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// CodeAnalysisJSON is the export form of a repo analysis.
type CodeAnalysisJSON struct {
	BotID         int      `json:"bot_id"`
	Link          string   `json:"link"`
	Outcome       string   `json:"outcome"`
	FullName      string   `json:"full_name,omitempty"`
	MainLanguage  string   `json:"main_language,omitempty"`
	Analyzed      bool     `json:"analyzed"`
	PerformsCheck bool     `json:"performs_check"`
	Patterns      []string `json:"patterns,omitempty"`
}

// WriteCodeAnalyses streams per-repo analyses as JSON Lines.
func WriteCodeAnalyses(w io.Writer, analyses []*codeanalysis.RepoAnalysis) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, a := range analyses {
		if a == nil {
			continue
		}
		j := CodeAnalysisJSON{
			BotID: a.BotID, Link: a.Link, Outcome: string(a.Outcome),
			FullName: a.FullName, MainLanguage: a.MainLanguage,
			Analyzed: a.Analyzed, PerformsCheck: a.PerformsCheck,
			Patterns: a.PatternsFound,
		}
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("dataset: encode analysis %d: %w", a.BotID, err)
		}
	}
	return bw.Flush()
}

// VerdictJSON is the export form of a honeypot verdict.
type VerdictJSON struct {
	Bot            string   `json:"bot"`
	GuildTag       string   `json:"guild_tag"`
	Triggered      bool     `json:"triggered"`
	TriggeredKinds []string `json:"triggered_kinds,omitempty"`
	TriggerCount   int      `json:"trigger_count"`
	Responded      bool     `json:"responded"`
	BotMessages    []string `json:"bot_messages,omitempty"`
}

// WriteVerdicts streams honeypot verdicts as JSON Lines.
func WriteVerdicts(w io.Writer, verdicts []*honeypot.Verdict) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, v := range verdicts {
		if v == nil {
			continue
		}
		j := VerdictJSON{
			Bot: v.Subject.Name, GuildTag: v.GuildTag,
			Triggered: v.Triggered, TriggerCount: len(v.Triggers),
			Responded: v.Responded, BotMessages: v.BotMessages,
		}
		for _, k := range v.TriggeredKinds {
			j.TriggeredKinds = append(j.TriggeredKinds, k.String())
		}
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("dataset: encode verdict %s: %w", v.Subject.Name, err)
		}
	}
	return bw.Flush()
}

// TriggerJSON is the export form of a canary trigger.
type TriggerJSON struct {
	TokenID  string `json:"token_id"`
	Kind     string `json:"kind"`
	GuildTag string `json:"guild_tag"`
	Via      string `json:"via"`
	RemoteIP string `json:"remote_ip,omitempty"`
	At       string `json:"at"`
}

// WriteTriggers streams canary triggers as JSON Lines.
func WriteTriggers(w io.Writer, triggers []canary.Trigger) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range triggers {
		j := TriggerJSON{
			TokenID: t.TokenID, Kind: t.Kind.String(), GuildTag: t.GuildTag,
			Via: t.Via, RemoteIP: t.RemoteIP, At: t.At.UTC().Format("2006-01-02T15:04:05.000Z"),
		}
		if err := enc.Encode(j); err != nil {
			return fmt.Errorf("dataset: encode trigger %s: %w", t.TokenID, err)
		}
	}
	return bw.Flush()
}
