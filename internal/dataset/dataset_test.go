package dataset

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/canary"
	"repro/internal/codeanalysis"
	"repro/internal/honeypot"
	"repro/internal/permissions"
	"repro/internal/scraper"
)

func sampleRecords() []*scraper.Record {
	return []*scraper.Record{
		{
			ID: 1, Name: "Alpha", Tags: []string{"fun", "music"},
			Description: "a bot", GuildCount: 42, Votes: 7, Prefix: "!",
			Commands: []string{"!help"}, Developers: []string{"dev#0001"},
			HasWebsite: true, GitHubURL: "/dev/alpha",
			PermsValid: true, Perms: permissions.SendMessages | permissions.Administrator,
			PolicyLinkFound: true, PolicyText: "we collect data",
		},
		{
			ID: 2, Name: "Beta", PermsValid: false,
			InvalidReason: scraper.InvalidTimeout,
		},
		nil, // crawler gap: skipped on write
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecords(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()[:2]
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestRecordsJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecords(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatal(err)
	}
	if m["permissions"] != (permissions.SendMessages | permissions.Administrator).Value() {
		t.Errorf("permissions field = %v", m["permissions"])
	}
	names, _ := m["permission_names"].([]any)
	if len(names) != 2 {
		t.Errorf("permission_names = %v", names)
	}
	// Invalid record carries the reason and no permission value.
	m = nil
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	if m["invalid_reason"] != string(scraper.InvalidTimeout) {
		t.Errorf("invalid_reason = %v", m["invalid_reason"])
	}
	if _, present := m["permissions"]; present {
		t.Error("invalid record exported a permission value")
	}
}

func TestReadRecordsBadInput(t *testing.T) {
	if _, err := ReadRecords(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadRecords(strings.NewReader(`{"id":1,"perms_valid":true,"permissions":"zzz"}`)); err == nil {
		t.Error("bad permission value accepted")
	}
	got, err := ReadRecords(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty input = %v, %v", got, err)
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(id int, name string, rawPerms uint64, valid bool, guilds int) bool {
		rec := &scraper.Record{
			ID: id, Name: name, GuildCount: guilds,
			PermsValid: valid,
		}
		if valid {
			rec.Perms = permissions.Permission(rawPerms) & permissions.All
		}
		var buf bytes.Buffer
		if err := WriteRecords(&buf, []*scraper.Record{rec}); err != nil {
			return false
		}
		got, err := ReadRecords(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return reflect.DeepEqual(got[0], rec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteCodeAnalyses(t *testing.T) {
	analyses := []*codeanalysis.RepoAnalysis{
		{BotID: 1, Link: "/a/r", Outcome: codeanalysis.OutcomeValidRepo,
			FullName: "a/r", MainLanguage: "JavaScript", Analyzed: true,
			PerformsCheck: true, PatternsFound: []string{".has("}},
		nil,
		{BotID: 2, Link: "/dead", Outcome: codeanalysis.OutcomeDead},
	}
	var buf bytes.Buffer
	if err := WriteCodeAnalyses(&buf, analyses); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], `"performs_check":true`) {
		t.Errorf("line 0 = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"outcome":"invalid-link"`) {
		t.Errorf("line 1 = %s", lines[1])
	}
}

func TestWriteVerdictsAndTriggers(t *testing.T) {
	verdicts := []*honeypot.Verdict{
		{
			Subject: honeypot.Subject{Name: "Melonian"}, GuildTag: "hp-Melonian",
			Triggered:      true,
			TriggeredKinds: []canary.Kind{canary.KindWord, canary.KindURL},
			Triggers:       make([]canary.Trigger, 2),
			BotMessages:    []string{"wtf is this bro"},
		},
		nil,
	}
	var buf bytes.Buffer
	if err := WriteVerdicts(&buf, verdicts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"bot":"Melonian"`, `"triggered_kinds":["word","url"]`, `"trigger_count":2`, "wtf is this bro"} {
		if !strings.Contains(out, want) {
			t.Errorf("verdict export missing %q: %s", want, out)
		}
	}

	at := time.Date(2022, 10, 25, 12, 0, 0, 0, time.UTC)
	triggers := []canary.Trigger{{
		TokenID: "tok1", Kind: canary.KindPDF, GuildTag: "hp-x", Via: "http",
		RemoteIP: "127.0.0.1", At: at,
	}}
	buf.Reset()
	if err := WriteTriggers(&buf, triggers); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"at":"2022-10-25T12:00:00.000Z"`) {
		t.Errorf("trigger export = %s", buf.String())
	}
}
