package codeanalysis

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/codehost"
	"repro/internal/scraper"
	"repro/internal/synth"
)

func startHost(t *testing.T, h *codehost.Host) *scraper.Client {
	t.Helper()
	srv, err := codehost.NewServer(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := scraper.NewClient(scraper.ClientConfig{BaseURL: srv.BaseURL(), Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScanSource(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"if (message.member.hasPermission('KICK_MEMBERS')) {}", 2}, // .hasPermission( also contains .has( ? no — check below
		{"member.permissions.has('BAN_MEMBERS')", 1},
		{"const r = member.roles.cache.some(x => true)", 1},
		{"userPermissions = ctx.author.guild_permissions", 1},
		{"plain code with no checks", 0},
	}
	// Clarify case 0: ".hasPermission(" does not contain ".has(" as a
	// substring (".hasP" != ".has("), so expect exactly 1.
	cases[0].want = 1
	for _, c := range cases {
		if got := len(ScanSource(c.src)); got != c.want {
			t.Errorf("ScanSource(%q) = %d patterns %v, want %d", c.src, got, ScanSource(c.src), c.want)
		}
	}
}

func TestAnalyzeLinkOutcomes(t *testing.T) {
	h := codehost.NewHost()
	h.AddRepo(&codehost.Repo{Owner: "alice", Name: "goodbot", Files: []codehost.File{
		{Path: "README.md", Content: "# goodbot"},
		{Path: "index.js", Content: "if (message.member.hasPermission('KICK_MEMBERS')) {}"},
	}})
	h.AddRepo(&codehost.Repo{Owner: "alice", Name: "docs-only", Files: []codehost.File{
		{Path: "README.md", Content: "# just docs"},
		{Path: "LICENSE", Content: "MIT"},
	}})
	h.AddRepo(&codehost.Repo{Owner: "bob", Name: "nochecks", Files: []codehost.File{
		{Path: "bot.py", Content: "import discord\n# no checks here\n"},
	}})
	h.AddProfile("emptyuser")
	c := startHost(t, h)

	cases := []struct {
		link    string
		outcome LinkOutcome
		lang    string
		checked bool
	}{
		{"/alice/goodbot", OutcomeValidRepo, "JavaScript", true},
		{"/alice/docs-only", OutcomeValidRepo, "", false},
		{"/bob/nochecks", OutcomeValidRepo, "Python", false},
		{"/alice", OutcomeProfile, "", false},
		{"/emptyuser", OutcomeNoRepos, "", false},
		{"/ghost/nothing", OutcomeDead, "", false},
	}
	for _, tc := range cases {
		ra, err := AnalyzeLinkContext(context.Background(), c, 1, tc.link)
		if err != nil {
			t.Fatalf("%s: %v", tc.link, err)
		}
		if ra.Outcome != tc.outcome {
			t.Errorf("%s: outcome = %s, want %s", tc.link, ra.Outcome, tc.outcome)
		}
		if ra.MainLanguage != tc.lang {
			t.Errorf("%s: language = %q, want %q", tc.link, ra.MainLanguage, tc.lang)
		}
		if ra.PerformsCheck != tc.checked {
			t.Errorf("%s: check = %v, want %v (patterns %v)", tc.link, ra.PerformsCheck, tc.checked, ra.PatternsFound)
		}
	}
}

func TestAnalyzeAggregate(t *testing.T) {
	h := codehost.NewHost()
	h.AddRepo(&codehost.Repo{Owner: "a", Name: "js-checked", Files: []codehost.File{
		{Path: "index.js", Content: "member.roles.cache.has('x')"},
	}})
	h.AddRepo(&codehost.Repo{Owner: "a", Name: "js-unchecked", Files: []codehost.File{
		{Path: "index.js", Content: "console.log('hello')"},
	}})
	h.AddRepo(&codehost.Repo{Owner: "b", Name: "py-unchecked", Files: []codehost.File{
		{Path: "bot.py", Content: "print('hi')"},
	}})
	c := startHost(t, h)
	records := []*scraper.Record{
		{ID: 1, PermsValid: true, GitHubURL: "/a/js-checked"},
		{ID: 2, PermsValid: true, GitHubURL: "/a/js-unchecked"},
		{ID: 3, PermsValid: true, GitHubURL: "/b/py-unchecked"},
		{ID: 4, PermsValid: true, GitHubURL: "/dead/link"},
		{ID: 5, PermsValid: true},                              // no link
		{ID: 6, PermsValid: false, GitHubURL: "/a/js-checked"}, // inactive: skipped
		nil,
	}
	res, analyses, err := AnalyzeContext(context.Background(), c, records, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveBots != 5 || res.WithLink != 4 {
		t.Errorf("active/link = %d/%d", res.ActiveBots, res.WithLink)
	}
	if res.ValidRepos() != 3 || res.Outcomes[OutcomeDead] != 1 {
		t.Errorf("outcomes = %v", res.Outcomes)
	}
	if res.JSAnalyzed != 2 || res.JSChecked != 1 || res.PyAnalyzed != 1 || res.PyChecked != 0 {
		t.Errorf("analysis counts = %+v", res)
	}
	if res.CheckRate("JavaScript") != 0.5 || res.CheckRate("Python") != 0 {
		t.Errorf("check rates = %f / %f", res.CheckRate("JavaScript"), res.CheckRate("Python"))
	}
	if res.CheckRate("Rust") != 0 {
		t.Error("unknown language check rate should be 0")
	}
	if len(analyses) != 4 {
		t.Errorf("analyses = %d", len(analyses))
	}
	if res.PatternHits["member.roles.cache"] != 1 {
		t.Errorf("pattern hits = %v", res.PatternHits)
	}
}

// TestSyntheticPopulationRates runs the full code-analysis pipeline over
// a synthetic ecosystem and checks the §4.2 rates come back out.
func TestSyntheticPopulationRates(t *testing.T) {
	if testing.Short() {
		t.Skip("population-scale test")
	}
	eco := synth.Generate(synth.Config{Seed: 5, NumBots: 6000})
	c := startHost(t, eco.Host)
	var records []*scraper.Record
	for _, b := range eco.Bots {
		records = append(records, &scraper.Record{
			ID:         b.ID,
			PermsValid: b.InviteHealth == 0, // listing.InviteOK
			GitHubURL:  b.GitHubURL,
		})
	}
	res, _, err := AnalyzeContext(context.Background(), c, records, 8)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.2f, want %.2f ± %.1f", name, got, want, tol)
		}
	}
	within("link rate %", 100*float64(res.WithLink)/float64(res.ActiveBots), 23.86, 2.5)
	within("valid repo %", 100*float64(res.ValidRepos())/float64(res.WithLink), 60.46, 4.0)
	within("JS check %", 100*res.CheckRate("JavaScript"), 72.97, 6.0)
	within("Py check %", 100*res.CheckRate("Python"), 2.65, 3.0)
	if res.WithSource() >= res.ValidRepos() {
		t.Error("expected some README-only repositories")
	}
	if res.ByLanguage["JavaScript"] == 0 || res.ByLanguage["Python"] == 0 {
		t.Error("language detection found no JS/Py repos")
	}
}
