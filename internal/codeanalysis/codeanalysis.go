// Package codeanalysis implements the paper's code analysis stage (§3,
// §4.2): it visits the GitHub links collected from bot listings,
// classifies each link (valid repository, user profile, profile without
// public repositories, dead link), detects the repository's main
// language from its page, downloads the source files, and scans
// JavaScript and Python code for the four permission-check APIs of
// Table 3 to decide whether the bot checks its invokers' permissions.
package codeanalysis

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/htmlparse"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/scraper"
)

// Pattern is one Table 3 permission/role-check API.
type Pattern struct {
	Name    string // label used in reports
	Literal string // substring searched in source files
}

// Table3Patterns are the four checks the paper identifies for
// JavaScript and Python Discord libraries.
var Table3Patterns = []Pattern{
	{Name: ".hasPermission(", Literal: ".hasPermission("},
	{Name: ".has(", Literal: ".has("},
	{Name: "member.roles.cache", Literal: "member.roles.cache"},
	{Name: "userPermissions", Literal: "userPermissions"},
}

// LinkOutcome classifies one GitHub link, following §4.2's taxonomy:
// "The rest [of the] links take us to user profiles, a GitHub with no
// repositories, a GitHub with no public repositories, or an invalid
// link."
type LinkOutcome string

// Link outcomes.
const (
	OutcomeValidRepo LinkOutcome = "valid-repo"
	OutcomeProfile   LinkOutcome = "user-profile"
	OutcomeNoRepos   LinkOutcome = "profile-without-repos"
	OutcomeDead      LinkOutcome = "invalid-link"
)

// RepoAnalysis is the per-bot result.
type RepoAnalysis struct {
	BotID    int
	Link     string
	Outcome  LinkOutcome
	FullName string
	// MainLanguage is the first (main) language shown on the repo page;
	// empty for repositories with no identifiable source code.
	MainLanguage string
	// Analyzed is true for JavaScript/Python repositories whose sources
	// were scanned.
	Analyzed bool
	// PerformsCheck is true when any source file contains a Table 3
	// pattern.
	PerformsCheck bool
	// PatternsFound lists which APIs matched.
	PatternsFound []string
}

// ScanSource reports which Table 3 patterns appear in a source blob.
func ScanSource(src string) []string {
	var found []string
	for _, p := range Table3Patterns {
		if strings.Contains(src, p.Literal) {
			found = append(found, p.Name)
		}
	}
	return found
}

// AnalyzeLinkContext resolves one GitHub link against the code host
// and produces the per-bot analysis; fetches abort as soon as ctx is
// done.
func AnalyzeLinkContext(ctx context.Context, c *scraper.Client, botID int, link string) (*RepoAnalysis, error) {
	ra := &RepoAnalysis{BotID: botID, Link: link}
	doc, err := c.GetContext(ctx, link)
	if err != nil {
		if errors.Is(err, scraper.ErrGone) {
			ra.Outcome = OutcomeDead
			return ra, nil
		}
		return nil, fmt.Errorf("codeanalysis: fetch %s: %w", link, err)
	}
	if repoDiv := doc.ByID("repo"); repoDiv != nil {
		ra.Outcome = OutcomeValidRepo
		ra.FullName, _ = repoDiv.Attr("data-full-name")
		// "The scraper will then check for languages used for the code
		// and extracts the first (main) language provided."
		if lang := doc.SelectFirst("#lang-bar span.lang"); lang != nil {
			ra.MainLanguage, _ = lang.Attr("data-lang")
		}
		if ra.MainLanguage == "JavaScript" || ra.MainLanguage == "Python" {
			if err := scanRepoSources(ctx, c, doc, ra); err != nil {
				return nil, err
			}
		}
		return ra, nil
	}
	if prof := doc.ByID("profile"); prof != nil {
		if len(doc.Select("ul.repo-list li.repo")) == 0 {
			ra.Outcome = OutcomeNoRepos
		} else {
			ra.Outcome = OutcomeProfile
		}
		return ra, nil
	}
	ra.Outcome = OutcomeDead
	return ra, nil
}

// scanRepoSources downloads the repository's files and scans those of
// the main language for check APIs.
func scanRepoSources(ctx context.Context, c *scraper.Client, repoPage *htmlparse.Node, ra *RepoAnalysis) error {
	ra.Analyzed = true
	wantExt := ".js"
	if ra.MainLanguage == "Python" {
		wantExt = ".py"
	}
	seen := make(map[string]bool)
	for _, fileLink := range repoPage.Select("ul.file-list li.file a") {
		href, _ := fileLink.Attr("href")
		if !strings.HasSuffix(href, wantExt) {
			continue
		}
		src, err := c.GetRawContext(ctx, href)
		if err != nil {
			return fmt.Errorf("codeanalysis: raw %s: %w", href, err)
		}
		for _, name := range ScanSource(src) {
			if !seen[name] {
				seen[name] = true
				ra.PatternsFound = append(ra.PatternsFound, name)
			}
		}
	}
	ra.PerformsCheck = len(ra.PatternsFound) > 0
	sort.Strings(ra.PatternsFound)
	return nil
}

// Result aggregates a population of analyses into the §4.2 numbers.
type Result struct {
	ActiveBots int
	WithLink   int
	Outcomes   map[LinkOutcome]int
	// ByLanguage counts valid repositories per main language; the ""
	// key counts repositories with no identifiable source.
	ByLanguage map[string]int
	// JSAnalyzed/PyAnalyzed are repository counts whose sources were
	// scanned; *Checked counts those containing a Table 3 API.
	JSAnalyzed, JSChecked int
	PyAnalyzed, PyChecked int
	// PatternHits counts repositories containing each API.
	PatternHits map[string]int
	// Quarantined lists (bot, link) pairs whose analysis was abandoned
	// after the fetch exhausted its retries — counted and skipped, not
	// fatal. Bots sharing a dead-to-us link are quarantined together.
	Quarantined []QuarantinedLink
}

// QuarantinedLink records one bot whose GitHub link could not be
// analyzed because of infrastructure failures.
type QuarantinedLink struct {
	BotID int
	Link  string
	Err   error
}

// Degraded reports whether any link analysis was lost.
func (r *Result) Degraded() bool { return len(r.Quarantined) > 0 }

// NewResult creates an empty aggregate with its maps allocated — both
// executors build Results through it so fault-free runs compare equal.
func NewResult() *Result {
	return &Result{
		Outcomes:    make(map[LinkOutcome]int),
		ByLanguage:  make(map[string]int),
		PatternHits: make(map[string]int),
	}
}

// NoteBot counts one active (perms-valid) bot into the stage totals.
func (r *Result) NoteBot(hasLink bool) {
	r.ActiveBots++
	if hasLink {
		r.WithLink++
	}
}

// Add folds one per-bot analysis into the §4.2 aggregate. Commutative,
// so accumulation order — sequential job order or sharded completion
// order — does not affect the totals.
func (r *Result) Add(ra *RepoAnalysis) {
	r.Outcomes[ra.Outcome]++
	if ra.Outcome != OutcomeValidRepo {
		return
	}
	r.ByLanguage[ra.MainLanguage]++
	switch ra.MainLanguage {
	case "JavaScript":
		r.JSAnalyzed++
		if ra.PerformsCheck {
			r.JSChecked++
		}
	case "Python":
		r.PyAnalyzed++
		if ra.PerformsCheck {
			r.PyChecked++
		}
	}
	for _, p := range ra.PatternsFound {
		r.PatternHits[p]++
	}
}

// AnalyzeOptions extends AnalyzeContext with checkpoint/resume hooks.
// The stage's dedup unit is the unique link, so resume state and the
// checkpointer's feed are keyed by link, not bot: one settled link
// covers every bot referencing it.
type AnalyzeOptions struct {
	// Workers controls fetch parallelism (default 4).
	Workers int
	// Resume, when set, replays settled link outcomes from a
	// checkpoint; settled links are never re-fetched.
	Resume *AnalyzeResume
	// OnLink observes each freshly settled unique link — the
	// checkpointer's feed. ra is nil when the link failed (errText
	// set). Not called for resumed skips. May be called concurrently.
	OnLink func(link string, ra *RepoAnalysis, errText string)
}

// AnalyzeResume carries a checkpoint's settled link outcomes back into
// a resumed run.
type AnalyzeResume struct {
	// Settled maps unique link → its analysis (BotID field is
	// meaningless; it is re-stamped per referencing bot).
	Settled map[string]*RepoAnalysis
	// Failed maps unique link → the error text that quarantined its
	// bots.
	Failed map[string]string
}

// AnalyzeContext is Analyze with cancellation: no new link fetches
// start after ctx is done, and in-flight fetches abort. Each analyzed
// link runs under its own child span of any span carried by ctx.
//
// Links are deduplicated before fetching: many bots share a developer's
// profile page or repository, so each unique link is resolved exactly
// once and its analysis cloned per bot. Besides saving fetches, this
// keeps the fault injector's per-endpoint attempt numbering — and with
// it the degradation ledger — independent of worker interleaving.
//
// A link whose fetch fails after retries quarantines every bot that
// referenced it (Result.Quarantined) instead of aborting the stage;
// only context cancellation returns an error.
func AnalyzeContext(ctx context.Context, c *scraper.Client, records []*scraper.Record, workers int) (*Result, []*RepoAnalysis, error) {
	return AnalyzeOptionsContext(ctx, c, records, AnalyzeOptions{Workers: workers})
}

// AnalyzeOptionsContext is AnalyzeContext with checkpoint/resume hooks:
// links settled in opts.Resume are replayed (journaled as work_skipped
// per referencing bot) instead of re-fetched, and every freshly settled
// link is reported through opts.OnLink.
func AnalyzeOptionsContext(ctx context.Context, c *scraper.Client, records []*scraper.Record, opts AnalyzeOptions) (*Result, []*RepoAnalysis, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	res := NewResult()
	type job struct {
		botID int
		link  string
	}
	var jobs []job
	links := make(map[string][]int) // unique link → indexes into jobs
	var uniq []string
	for _, r := range records {
		if r == nil || !r.PermsValid {
			continue
		}
		res.NoteBot(r.GitHubURL != "")
		if r.GitHubURL == "" {
			continue
		}
		if _, ok := links[r.GitHubURL]; !ok {
			uniq = append(uniq, r.GitHubURL)
		}
		links[r.GitHubURL] = append(links[r.GitHubURL], len(jobs))
		jobs = append(jobs, job{r.ID, r.GitHubURL})
	}

	linkResults := make([]*RepoAnalysis, len(uniq))
	linkErrs := make([]error, len(uniq))
	resumed := make([]bool, len(uniq))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	var firstErr error
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for u, link := range uniq {
		if err := ctx.Err(); err != nil {
			fail(err)
			break
		}
		if opts.Resume != nil {
			if ra, ok := opts.Resume.Settled[link]; ok {
				clone := *ra
				linkResults[u] = &clone
				resumed[u] = true
				continue
			}
			if msg, ok := opts.Resume.Failed[link]; ok {
				linkErrs[u] = errors.New(msg)
				resumed[u] = true
				continue
			}
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(u int, link string) {
			defer wg.Done()
			defer func() { <-sem }()
			linkCtx, span := obs.StartChild(ctx, "link-"+link)
			ra, err := AnalyzeLinkContext(linkCtx, c, 0, link)
			span.End()
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					fail(err)
					return
				}
				linkErrs[u] = err
				if opts.OnLink != nil {
					opts.OnLink(link, nil, err.Error())
				}
				return
			}
			linkResults[u] = ra
			if opts.OnLink != nil {
				opts.OnLink(link, ra, "")
			}
		}(u, link)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	// Assemble per-bot analyses in job (listing) order, cloning the
	// shared link result, and quarantine the bots behind failed links.
	// Bots behind a link settled in the checkpoint are journaled as
	// work_skipped instead of re-emitting their original milestones.
	perJob := make([]*RepoAnalysis, len(jobs))
	jobErr := make([]error, len(jobs))
	jobResumed := make([]bool, len(jobs))
	for u, link := range uniq {
		for _, ji := range links[link] {
			jobResumed[ji] = resumed[u]
			if lerr := linkErrs[u]; lerr != nil {
				jobErr[ji] = lerr
				continue
			}
			if linkResults[u] == nil {
				continue // fetch never ran (cancellation mid-stage)
			}
			clone := *linkResults[u]
			clone.BotID = jobs[ji].botID
			perJob[ji] = &clone
		}
	}
	analyses := make([]*RepoAnalysis, 0, len(jobs))
	for ji, ra := range perJob {
		if ra == nil {
			if jobErr[ji] != nil {
				res.Quarantined = append(res.Quarantined, QuarantinedLink{
					BotID: jobs[ji].botID, Link: jobs[ji].link, Err: jobErr[ji],
				})
				if jobResumed[ji] {
					journal.Emit(journal.WithBot(ctx, jobs[ji].botID, ""), "codeanalysis",
						journal.KindWorkSkipped, map[string]any{
							"stage":  "codeanalysis",
							"reason": "quarantined in checkpoint",
							"link":   jobs[ji].link,
						})
				} else {
					journal.Emit(journal.WithBot(ctx, jobs[ji].botID, ""), "codeanalysis",
						journal.KindBotQuarantined, map[string]any{
							"link":  jobs[ji].link,
							"error": jobErr[ji].Error(),
						})
				}
			}
			continue
		}
		analyses = append(analyses, ra)
		if jobResumed[ji] {
			journal.Emit(journal.WithBot(ctx, ra.BotID, ""), "codeanalysis",
				journal.KindWorkSkipped, map[string]any{
					"stage":  "codeanalysis",
					"reason": "settled in checkpoint",
					"link":   jobs[ji].link,
				})
			continue
		}
		journal.Emit(journal.WithBot(ctx, ra.BotID, ""), "codeanalysis",
			journal.KindCodeFlag, map[string]any{
				"outcome":        string(ra.Outcome),
				"language":       ra.MainLanguage,
				"analyzed":       ra.Analyzed,
				"performs_check": ra.PerformsCheck,
				"patterns":       ra.PatternsFound,
			})
	}

	for _, ra := range analyses {
		res.Add(ra)
	}
	return res, analyses, nil
}

// ValidRepos returns the count of links that resolved to repositories.
func (r *Result) ValidRepos() int { return r.Outcomes[OutcomeValidRepo] }

// WithSource returns valid repositories whose language was identified.
func (r *Result) WithSource() int { return r.ValidRepos() - r.ByLanguage[""] }

// CheckRate returns the fraction (0..1) of analyzed repos in a language
// that perform permission checks.
func (r *Result) CheckRate(language string) float64 {
	switch language {
	case "JavaScript":
		if r.JSAnalyzed == 0 {
			return 0
		}
		return float64(r.JSChecked) / float64(r.JSAnalyzed)
	case "Python":
		if r.PyAnalyzed == 0 {
			return 0
		}
		return float64(r.PyChecked) / float64(r.PyAnalyzed)
	default:
		return 0
	}
}
