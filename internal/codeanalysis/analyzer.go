package codeanalysis

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/trace"
	"repro/internal/scraper"
)

// Analyzer is the stage's per-bot form for caller-scheduled executors
// (the sharded pipeline). Where AnalyzeOptionsContext deduplicates
// links up front, the Analyzer deduplicates on demand with a
// single-flight cache: the first bot to reach a link fetches it, later
// bots (possibly concurrent) wait on the same flight and clone its
// analysis. One fetch per unique link keeps the fault injector's
// per-endpoint attempt numbering — and with it the degradation ledger —
// independent of scheduling, exactly as the batch path does.
type Analyzer struct {
	Client *scraper.Client
	Opts   AnalyzeOptions

	mu      sync.Mutex
	flights map[string]*linkFlight
}

// linkFlight is one unique link's resolution, shared by every bot
// referencing it.
type linkFlight struct {
	done    chan struct{}
	ra      *RepoAnalysis // master copy (BotID unset), nil on failure
	err     error
	resumed bool
}

// SettledLink is one bot's code-analysis outcome.
type SettledLink struct {
	// RA is the per-bot analysis, nil when the link was quarantined.
	RA *RepoAnalysis
	// Quarantine is the fetch failure that set the bot aside.
	Quarantine error
	// Resumed marks an outcome replayed from Opts.Resume.
	Resumed bool
}

// NewAnalyzer builds an Analyzer sharing one flight cache.
func NewAnalyzer(c *scraper.Client, opts AnalyzeOptions) *Analyzer {
	return &Analyzer{Client: c, Opts: opts, flights: make(map[string]*linkFlight)}
}

// resolve returns the link's flight, fetching it exactly once across
// all callers. A non-nil error is context cancellation.
func (az *Analyzer) resolve(ctx context.Context, link string) (*linkFlight, error) {
	az.mu.Lock()
	if f, ok := az.flights[link]; ok {
		az.mu.Unlock()
		select {
		case <-f.done:
			return f, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &linkFlight{done: make(chan struct{})}
	az.flights[link] = f
	az.mu.Unlock()
	defer close(f.done)
	if r := az.Opts.Resume; r != nil {
		if ra, ok := r.Settled[link]; ok {
			clone := *ra
			f.ra, f.resumed = &clone, true
			return f, nil
		}
		if msg, ok := r.Failed[link]; ok {
			f.err, f.resumed = errors.New(msg), true
			return f, nil
		}
	}
	linkCtx, span := obs.StartChild(ctx, "link-"+link)
	endOp := trace.StartOpDetail(linkCtx, "codehost_fetch", link)
	ra, err := AnalyzeLinkContext(linkCtx, az.Client, 0, link)
	endOp()
	span.End()
	if err != nil {
		f.err = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return f, nil // waiters see the cancellation through f.err
		}
		if az.Opts.OnLink != nil {
			az.Opts.OnLink(link, nil, err.Error())
		}
		return f, nil
	}
	f.ra = ra
	if az.Opts.OnLink != nil {
		az.Opts.OnLink(link, ra, "")
	}
	return f, nil
}

// SettleBot resolves one bot's link through the flight cache and emits
// the same per-bot journal milestones as the batch path. The returned
// error is fatal (context cancellation only).
func (az *Analyzer) SettleBot(ctx context.Context, botID int, link string) (SettledLink, error) {
	ctx = trace.WithBot(ctx, botID, "")
	defer trace.StartStage(ctx)()
	f, err := az.resolve(ctx, link)
	if err != nil {
		return SettledLink{}, err
	}
	botCtx := journal.WithBot(ctx, botID, "")
	if f.err != nil {
		if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
			return SettledLink{}, f.err
		}
		if f.resumed {
			journal.Emit(botCtx, "codeanalysis", journal.KindWorkSkipped, map[string]any{
				"stage":  "codeanalysis",
				"reason": "quarantined in checkpoint",
				"link":   link,
			})
		} else {
			journal.Emit(botCtx, "codeanalysis", journal.KindBotQuarantined, map[string]any{
				"link":  link,
				"error": f.err.Error(),
			})
		}
		return SettledLink{Quarantine: f.err, Resumed: f.resumed}, nil
	}
	clone := *f.ra
	clone.BotID = botID
	if f.resumed {
		journal.Emit(botCtx, "codeanalysis", journal.KindWorkSkipped, map[string]any{
			"stage":  "codeanalysis",
			"reason": "settled in checkpoint",
			"link":   link,
		})
	} else {
		journal.Emit(botCtx, "codeanalysis", journal.KindCodeFlag, map[string]any{
			"outcome":        string(clone.Outcome),
			"language":       clone.MainLanguage,
			"analyzed":       clone.Analyzed,
			"performs_check": clone.PerformsCheck,
			"patterns":       clone.PatternsFound,
		})
	}
	return SettledLink{RA: &clone, Resumed: f.resumed}, nil
}
