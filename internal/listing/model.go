// Package listing implements a top.gg-style chatbot repository: a data
// model for bot listings and an HTTP server that renders them as
// paginated HTML, complete with the anti-scraping behaviours the
// paper's crawler had to survive — rate limits, captcha challenges,
// flaky page elements, removed bots, and slow redirect invite links.
package listing

import (
	"sort"

	"repro/internal/permissions"
)

// InviteHealth describes what happens when the install link of a bot is
// followed. The paper found 26% of bots had invalid permissions "due to
// invalid invite links, have been removed, or timed out due to slow
// redirect links".
type InviteHealth int

// Invite health states.
const (
	// InviteOK renders the consent page with the requested permissions.
	InviteOK InviteHealth = iota
	// InviteBroken points at a malformed URL that 404s.
	InviteBroken
	// InviteRemoved belongs to a bot deleted from the platform; the
	// install endpoint answers 410 Gone.
	InviteRemoved
	// InviteSlow redirects only after a delay longer than any sane
	// scraper timeout.
	InviteSlow
)

// String names the health state.
func (h InviteHealth) String() string {
	switch h {
	case InviteOK:
		return "ok"
	case InviteBroken:
		return "broken"
	case InviteRemoved:
		return "removed"
	case InviteSlow:
		return "slow-redirect"
	default:
		return "unknown"
	}
}

// Bot is one listed chatbot with every attribute the paper's data
// collection extracts: "the chatbot's ID, name, URL, tags, permissions,
// guild count, description and GitHub link".
type Bot struct {
	ID          int
	Name        string
	Developers  []string // "name#discriminator" tags; first is primary
	Tags        []string
	Description string
	GuildCount  int
	Votes       int
	Prefix      string
	Commands    []string

	Perms        permissions.Permission
	InviteHealth InviteHealth

	// HasWebsite controls whether the detail page shows a website link
	// (served under /site/<id> on the listing host).
	HasWebsite bool
	// HasPolicyLink controls whether that website links a privacy
	// policy page.
	HasPolicyLink bool
	// PolicyDead makes the policy link 404 (paper: 676 links, 673
	// valid pages).
	PolicyDead bool
	// PolicyText is served at /site/<id>/privacy when present.
	PolicyText string

	// GitHubURL, when non-empty, is rendered on the detail page. It may
	// point at a valid repository, a user profile, or a dead path on
	// the code host — the link taxonomy of §4.2.
	GitHubURL string
}

// Directory is an ordered collection of listed bots, sorted by vote
// count descending — the "top chatbot" list the paper traverses.
type Directory struct {
	bots   []*Bot
	byID   map[int]*Bot
	perRow int
}

// PageSize is the number of bot cards per listing page. 26 cards over
// 20,915 bots yields the "over 800 pages" the paper reports traversing.
const PageSize = 26

// NewDirectory builds a directory from a bot population. The slice is
// copied and sorted by votes descending (ties by ID for determinism).
func NewDirectory(bots []*Bot) *Directory {
	d := &Directory{
		bots: append([]*Bot(nil), bots...),
		byID: make(map[int]*Bot, len(bots)),
	}
	sort.SliceStable(d.bots, func(i, j int) bool {
		if d.bots[i].Votes != d.bots[j].Votes {
			return d.bots[i].Votes > d.bots[j].Votes
		}
		return d.bots[i].ID < d.bots[j].ID
	})
	for _, b := range d.bots {
		d.byID[b.ID] = b
	}
	return d
}

// Len returns the population size.
func (d *Directory) Len() int { return len(d.bots) }

// Pages returns the number of listing pages.
func (d *Directory) Pages() int {
	return (len(d.bots) + PageSize - 1) / PageSize
}

// Page returns the bots on 1-indexed page n (empty past the end).
func (d *Directory) Page(n int) []*Bot {
	if n < 1 {
		return nil
	}
	lo := (n - 1) * PageSize
	if lo >= len(d.bots) {
		return nil
	}
	hi := lo + PageSize
	if hi > len(d.bots) {
		hi = len(d.bots)
	}
	return d.bots[lo:hi]
}

// PageByTag returns the 1-indexed page of bots carrying a purpose tag,
// in listing (vote) order, plus whether more pages follow. The paper's
// honeypot sample spans purposes "such as gaming, fun, social, music,
// meme"; tag pages are how a listing surfaces them.
func (d *Directory) PageByTag(tag string, n int) ([]*Bot, bool) {
	if n < 1 {
		return nil, false
	}
	var matched []*Bot
	for _, b := range d.bots {
		for _, t := range b.Tags {
			if t == tag {
				matched = append(matched, b)
				break
			}
		}
	}
	lo := (n - 1) * PageSize
	if lo >= len(matched) {
		return nil, false
	}
	hi := lo + PageSize
	if hi > len(matched) {
		hi = len(matched)
	}
	return matched[lo:hi], hi < len(matched)
}

// ByID looks a bot up.
func (d *Directory) ByID(id int) (*Bot, bool) {
	b, ok := d.byID[id]
	return b, ok
}

// All returns the bots in listing order. Callers must not mutate.
func (d *Directory) All() []*Bot { return d.bots }
