package listing

import (
	"strings"
	"testing"

	"repro/internal/htmlparse"
	"repro/internal/permissions"
)

// TestHostileBotMetadataIsEscaped plants XSS-style payloads in every
// bot-controlled field and asserts the rendered pages contain no live
// markup from them — and that a scraper parsing the page recovers the
// original strings instead of being structurally confused. Listing
// sites render attacker-controlled bot metadata, so this is exactly the
// crawl-robustness problem a real measurement pipeline faces.
func TestHostileBotMetadataIsEscaped(t *testing.T) {
	hostile := &Bot{
		ID:            1,
		Name:          `<script>alert(1)</script>`,
		Developers:    []string{`evil"><img src=x onerror=alert(2)>#0001`},
		Tags:          []string{`"><li class="bot-card">`},
		Description:   `</div><div id="fake-detail">`,
		Prefix:        `"><b>`,
		Commands:      []string{`!help<iframe>`},
		GuildCount:    5,
		Votes:         50,
		Perms:         permissions.SendMessages,
		HasWebsite:    true,
		HasPolicyLink: true,
		PolicyText:    `<style>body{display:none}</style> we collect data`,
	}
	srv := newServer(t, []*Bot{hostile}, AntiScrape{})

	for _, path := range []string{"/bots?page=1", "/bot/1", "/site/1", "/site/1/privacy"} {
		code, body := get(t, srv.BaseURL()+path)
		if code != 200 {
			t.Fatalf("%s status = %d", path, code)
		}
		if strings.Contains(body, "<script>") || strings.Contains(body, "<iframe>") ||
			strings.Contains(body, "<style>") {
			t.Errorf("%s rendered live hostile markup:\n%s", path, body)
		}
		doc := htmlparse.Parse(body)
		if n := doc.SelectFirst("#fake-detail"); n != nil {
			t.Errorf("%s: description broke out of its element", path)
		}
		if got := len(doc.Select("li.bot-card")); path == "/bots?page=1" && got != 1 {
			t.Errorf("%s: tag injection altered card count: %d", path, got)
		}
	}

	// The parser recovers the original name verbatim on the detail page.
	_, body := get(t, srv.BaseURL()+"/bot/1")
	doc := htmlparse.Parse(body)
	name := doc.SelectFirst("h1.bot-name")
	if name == nil || name.Text() != hostile.Name {
		t.Errorf("scraped name = %v, want original payload", name)
	}
	policyCode, policyBody := get(t, srv.BaseURL()+"/site/1/privacy")
	if policyCode != 200 {
		t.Fatal(policyCode)
	}
	pdoc := htmlparse.Parse(policyBody)
	pre := pdoc.SelectFirst("#privacy-policy pre")
	if pre == nil || !strings.Contains(pre.Text(), "we collect data") {
		t.Errorf("policy text mangled: %v", pre)
	}
}
