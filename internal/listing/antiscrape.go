package listing

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// AntiScrape configures the countermeasures the listing server deploys,
// mirroring §3's list: request rate limits, captchas, and unstable page
// structure.
type AntiScrape struct {
	// RequestsPerSecond is the per-client sustained budget; 0 disables
	// rate limiting.
	RequestsPerSecond float64
	// Burst is the token-bucket depth (default 10 when limiting).
	Burst int
	// CaptchaEvery issues a captcha challenge to a client after every N
	// successful requests; 0 disables captchas.
	CaptchaEvery int
	// FlakyEvery makes every Nth detail-page render omit its
	// permissions block, modelling "elements unexpectedly becoming
	// unavailable" (NoSuchElementException); 0 disables.
	FlakyEvery int
	// SlowRedirectDelay is how long InviteSlow install pages stall
	// before redirecting (default 3s).
	SlowRedirectDelay time.Duration
	// RobotsTxt, when non-empty, is served at /robots.txt so polite
	// crawlers can honour the site's published crawl policy.
	RobotsTxt string
}

// captchaChallenge is an arithmetic puzzle; solving it grants a pass
// token. Trivially machine-solvable — so is the economics of 2Captcha.
type captchaChallenge struct {
	id     string
	a, b   int
	answer int
}

// clientState tracks one client's bucket and captcha standing.
type clientState struct {
	tokens     float64
	lastRefill time.Time
	served     int
	challenge  *captchaChallenge
	passes     map[string]bool
}

// guard enforces AntiScrape per client key (remote IP).
type guard struct {
	cfg AntiScrape

	mu      sync.Mutex
	clients map[string]*clientState
	rng     *rand.Rand
	nextID  int
	now     func() time.Time
}

func newGuard(cfg AntiScrape, now func() time.Time) *guard {
	if now == nil {
		now = time.Now
	}
	if cfg.Burst == 0 {
		cfg.Burst = 10
	}
	if cfg.SlowRedirectDelay == 0 {
		cfg.SlowRedirectDelay = 3 * time.Second
	}
	return &guard{
		cfg:     cfg,
		clients: make(map[string]*clientState),
		rng:     rand.New(rand.NewSource(99)),
		now:     now,
	}
}

func (g *guard) state(key string) *clientState {
	st, ok := g.clients[key]
	if !ok {
		st = &clientState{tokens: float64(g.cfg.Burst), lastRefill: g.now(), passes: make(map[string]bool)}
		g.clients[key] = st
	}
	return st
}

// verdict of an admission check.
type verdict int

const (
	admit verdict = iota
	throttled
	challenged
)

// admitRequest applies rate limiting and captcha policy for one request.
// A request carrying a valid pass token skips the captcha check once.
func (g *guard) admitRequest(key, pass string) (verdict, *captchaChallenge) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state(key)

	if g.cfg.RequestsPerSecond > 0 {
		now := g.now()
		elapsed := now.Sub(st.lastRefill).Seconds()
		st.lastRefill = now
		st.tokens += elapsed * g.cfg.RequestsPerSecond
		if st.tokens > float64(g.cfg.Burst) {
			st.tokens = float64(g.cfg.Burst)
		}
		if st.tokens < 1 {
			return throttled, nil
		}
		st.tokens--
	}

	if st.challenge != nil {
		if pass != "" && st.passes[pass] {
			delete(st.passes, pass)
			st.challenge = nil
		} else {
			return challenged, st.challenge
		}
	}

	st.served++
	if g.cfg.CaptchaEvery > 0 && st.served%g.cfg.CaptchaEvery == 0 {
		g.nextID++
		ch := &captchaChallenge{
			id: fmt.Sprintf("ch%06d", g.nextID),
			a:  g.rng.Intn(90) + 10,
			b:  g.rng.Intn(90) + 10,
		}
		ch.answer = ch.a + ch.b
		st.challenge = ch
	}
	return admit, nil
}

// solve checks a captcha answer and, if correct, mints a pass token.
func (g *guard) solve(key, challengeID string, answer int) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state(key)
	if st.challenge == nil || st.challenge.id != challengeID || st.challenge.answer != answer {
		return "", false
	}
	g.nextID++
	pass := fmt.Sprintf("pass%06d", g.nextID)
	st.passes[pass] = true
	return pass, true
}

func clientKey(r *http.Request) string {
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	// Scrapers may present a session header so tests can simulate
	// distinct clients from one address.
	if sid := r.Header.Get("X-Session"); sid != "" {
		return host + "/" + sid
	}
	return host
}

// renderCaptcha writes the challenge page.
func renderCaptcha(w http.ResponseWriter, ch *captchaChallenge) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusForbidden)
	fmt.Fprintf(w, `<html><body>
<div id="captcha" data-challenge-id="%s">
  <p class="challenge-text">Prove you are human: what is %d plus %d?</p>
  <form action="/captcha" method="POST">
    <input type="hidden" name="challenge_id" value="%s">
    <input type="text" name="answer">
  </form>
</div></body></html>`, ch.id, ch.a, ch.b, ch.id)
}

// parseChallenge extracts the operands from a rendered challenge page —
// exported-for-scraper logic lives in the scraper's solver; here only
// the server-side form handler needs parsing helpers.
func parseAnswer(s string) (int, bool) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	return v, err == nil
}
