package listing

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/htmlparse"
)

// Server renders a Directory as a scrapeable website.
type Server struct {
	dir   *Directory
	guard *guard
	cfg   AntiScrape
	srv   *http.Server
	mux   *http.ServeMux
	ln    net.Listener

	// handler is the effective root handler: the mux, possibly wrapped
	// by middleware installed via SetMiddleware. Held atomically so it
	// can be swapped while the server runs.
	handler atomic.Value // of handlerBox

	mu      sync.Mutex
	renders map[string]int // per-path render counter driving flakiness

	requests int64
}

// NewServer starts the listing site on addr.
func NewServer(dir *Directory, cfg AntiScrape, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listing: listen: %w", err)
	}
	s := &Server{
		dir:     dir,
		guard:   newGuard(cfg, nil),
		cfg:     cfg,
		ln:      ln,
		renders: make(map[string]int),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/bots", s.guarded(s.handleList))
	mux.HandleFunc("/bot/", s.guarded(s.handleDetail))
	mux.HandleFunc("/oauth/authorize", s.guarded(s.handleConsent))
	mux.HandleFunc("/oauth/slow/", s.handleSlowRedirect) // delay is the defence
	mux.HandleFunc("/captcha", s.handleCaptcha)
	mux.HandleFunc("/site/", s.guarded(s.handleSite))
	mux.HandleFunc("/robots.txt", s.handleRobots)
	s.mux = mux
	s.handler.Store(handlerBox{mux})
	s.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.handler.Load().(handlerBox).h.ServeHTTP(w, r)
	})}
	go s.srv.Serve(ln)
	return s, nil
}

// Mount registers an extra handler on the site's mux — ungated by the
// anti-scraping guard. The auditor uses it to expose /metrics.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// SetMiddleware wraps the whole site (including mounted handlers) in
// mw — the hook the chaos harness uses to interpose fault injection.
// Passing nil restores the bare mux. Safe to call while serving.
func (s *Server) SetMiddleware(mw func(http.Handler) http.Handler) {
	if mw == nil {
		s.handler.Store(handlerBox{s.mux})
		return
	}
	s.handler.Store(handlerBox{mw(s.mux)})
}

// handlerBox gives atomic.Value the single concrete type it requires
// while the boxed handler's type varies.
type handlerBox struct{ h http.Handler }

// BaseURL returns the site root.
func (s *Server) BaseURL() string { return "http://" + s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Requests returns how many admitted page loads the site has served.
func (s *Server) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// guarded wraps a handler with the anti-scraping gate.
func (s *Server) guarded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v, ch := s.guard.admitRequest(clientKey(r), r.Header.Get("X-Captcha-Pass"))
		switch v {
		case throttled:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		case challenged:
			renderCaptcha(w, ch)
			return
		}
		s.mu.Lock()
		s.requests++
		s.mu.Unlock()
		h(w, r)
	}
}

func (s *Server) handleRobots(w http.ResponseWriter, r *http.Request) {
	if s.cfg.RobotsTxt == "" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.cfg.RobotsTxt)
}

func (s *Server) handleCaptcha(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	ans, ok := parseAnswer(r.FormValue("answer"))
	if !ok {
		http.Error(w, "bad answer", http.StatusBadRequest)
		return
	}
	pass, solved := s.guard.solve(clientKey(r), r.FormValue("challenge_id"), ans)
	if !solved {
		http.Error(w, "wrong answer", http.StatusForbidden)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><body><div id="captcha-pass" data-pass="%s">solved</div></body></html>`, pass)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	page := 1
	if p := r.URL.Query().Get("page"); p != "" {
		if v, err := strconv.Atoi(p); err == nil && v > 0 {
			page = v
		}
	}
	var bots []*Bot
	nextHref := ""
	if tag := r.URL.Query().Get("tag"); tag != "" {
		var more bool
		bots, more = s.dir.PageByTag(tag, page)
		if more {
			nextHref = fmt.Sprintf("/bots?tag=%s&page=%d", tag, page+1)
		}
	} else {
		bots = s.dir.Page(page)
		if page < s.dir.Pages() {
			nextHref = fmt.Sprintf("/bots?page=%d", page+1)
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString(`<html><head><title>Top Chatbots</title></head><body><ul class="bot-list">`)
	for _, bot := range bots {
		fmt.Fprintf(&b, `<li class="bot-card" data-bot-id="%d">
<a class="bot-link" href="/bot/%d"><span class="bot-name">%s</span></a>
<span class="votes">%d</span><span class="guilds">%d</span>
</li>`, bot.ID, bot.ID, htmlparse.EscapeText(bot.Name), bot.Votes, bot.GuildCount)
	}
	b.WriteString(`</ul>`)
	if nextHref != "" {
		fmt.Fprintf(&b, `<a id="next-page" href="%s">Next</a>`, htmlparse.EscapeAttr(nextHref))
	}
	b.WriteString(`</body></html>`)
	fmt.Fprint(w, b.String())
}

// flakyRender reports whether this render of path should omit optional
// blocks. Deterministically, one in FlakyEvery paths is flaky, and only
// on its first render — a retry always sees the full page, which is
// exactly the recover-by-retrying behaviour §3 calls for.
func (s *Server) flakyRender(path string) bool {
	if s.cfg.FlakyEvery <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.renders[path]++
	if s.renders[path] != 1 {
		return false
	}
	var h uint32
	for i := 0; i < len(path); i++ {
		h = h*31 + uint32(path[i])
	}
	return h%uint32(s.cfg.FlakyEvery) == 0
}

func (s *Server) handleDetail(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/bot/"))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	bot, ok := s.dir.ByID(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	flaky := s.flakyRender(r.URL.Path)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, `<html><head><title>%s</title></head><body>
<div id="bot-detail" data-bot-id="%d">
<h1 class="bot-name">%s</h1>
<p class="description">%s</p>
<span class="guild-count">%d</span><span class="vote-count">%d</span>
<span class="prefix">%s</span>`,
		htmlparse.EscapeText(bot.Name), bot.ID, htmlparse.EscapeText(bot.Name),
		htmlparse.EscapeText(bot.Description), bot.GuildCount, bot.Votes,
		htmlparse.EscapeAttr(bot.Prefix))
	b.WriteString(`<ul class="tags">`)
	for _, tg := range bot.Tags {
		fmt.Fprintf(&b, `<li class="tag">%s</li>`, htmlparse.EscapeText(tg))
	}
	b.WriteString(`</ul><ul class="developers">`)
	for _, dev := range bot.Developers {
		fmt.Fprintf(&b, `<li class="developer">%s</li>`, htmlparse.EscapeText(dev))
	}
	b.WriteString(`</ul><ul class="commands">`)
	for _, c := range bot.Commands {
		fmt.Fprintf(&b, `<li class="command">%s</li>`, htmlparse.EscapeText(c))
	}
	b.WriteString(`</ul>`)
	if bot.HasWebsite {
		fmt.Fprintf(&b, `<a class="website" href="/site/%d">Website</a>`, bot.ID)
	}
	if bot.GitHubURL != "" {
		fmt.Fprintf(&b, `<a class="github" href="%s">GitHub</a>`, htmlparse.EscapeAttr(bot.GitHubURL))
	}
	if !flaky {
		fmt.Fprintf(&b, `<a class="invite" href="%s">Invite</a>`, htmlparse.EscapeAttr(s.inviteHref(bot)))
	}
	b.WriteString(`</div></body></html>`)
	fmt.Fprint(w, b.String())
}

// inviteHref renders the install link according to invite health.
func (s *Server) inviteHref(b *Bot) string {
	switch b.InviteHealth {
	case InviteBroken:
		// A mangled OAuth URL, as seen in the wild.
		return fmt.Sprintf("/oauth/authorize?bot_id=%d%%ZZ&permissions=", b.ID)
	case InviteSlow:
		return fmt.Sprintf("/oauth/slow/%d", b.ID)
	default:
		return fmt.Sprintf("/oauth/authorize?bot_id=%d&permissions=%s", b.ID, b.Perms.Value())
	}
}

func (s *Server) handleConsent(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id, err := strconv.Atoi(q.Get("bot_id"))
	if err != nil {
		http.Error(w, "bad bot_id", http.StatusBadRequest)
		return
	}
	bot, ok := s.dir.ByID(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	if bot.InviteHealth == InviteRemoved {
		http.Error(w, "bot removed", http.StatusGone)
		return
	}
	permVal := q.Get("permissions")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, `<html><body><div id="consent" data-bot-id="%d">
<h2>%s wants access to your server</h2>
<span id="perm-value">%s</span><ul class="perm-list">`,
		bot.ID, htmlparse.EscapeText(bot.Name), htmlparse.EscapeAttr(permVal))
	for _, name := range bot.Perms.Names() {
		fmt.Fprintf(&b, `<li class="perm">%s</li>`, htmlparse.EscapeText(name))
	}
	b.WriteString(`</ul><button id="authorize">Authorize</button></div></body></html>`)
	fmt.Fprint(w, b.String())
}

func (s *Server) handleSlowRedirect(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/oauth/slow/")
	// The whole point of this endpoint is the stall.
	time.Sleep(s.guard.cfg.SlowRedirectDelay)
	bot, ok := func() (*Bot, bool) {
		n, err := strconv.Atoi(id)
		if err != nil {
			return nil, false
		}
		return s.dir.ByID(n)
	}()
	if !ok {
		http.NotFound(w, r)
		return
	}
	http.Redirect(w, r, fmt.Sprintf("/oauth/authorize?bot_id=%d&permissions=%s", bot.ID, bot.Perms.Value()), http.StatusFound)
}

func (s *Server) handleSite(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/site/")
	parts := strings.SplitN(rest, "/", 2)
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		http.NotFound(w, r)
		return
	}
	bot, ok := s.dir.ByID(id)
	if !ok || !bot.HasWebsite {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if len(parts) == 2 && parts[1] == "privacy" {
		if bot.PolicyDead || !bot.HasPolicyLink {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, `<html><body><div id="privacy-policy"><pre>%s</pre></div></body></html>`,
			htmlparse.EscapeText(bot.PolicyText))
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<html><body><div id="bot-site" data-bot-id="%d"><h1>%s</h1>
<p>The official home of %s.</p>`, bot.ID, htmlparse.EscapeText(bot.Name), htmlparse.EscapeText(bot.Name))
	if bot.HasPolicyLink {
		fmt.Fprintf(&b, `<a id="privacy-link" href="/site/%d/privacy">Privacy Policy</a>`, bot.ID)
	}
	b.WriteString(`</div></body></html>`)
	fmt.Fprint(w, b.String())
}
