package listing

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/permissions"
)

func sampleBots(n int) []*Bot {
	bots := make([]*Bot, 0, n)
	for i := 1; i <= n; i++ {
		bots = append(bots, &Bot{
			ID:         i,
			Name:       fmt.Sprintf("bot%d", i),
			Developers: []string{"dev#0001"},
			Tags:       []string{"fun"},
			Votes:      i * 10,
			GuildCount: i,
			Prefix:     "!",
			Perms:      permissions.SendMessages | permissions.ViewChannel,
			HasWebsite: i%2 == 0,
		})
	}
	return bots
}

func TestDirectoryOrderingAndPaging(t *testing.T) {
	d := NewDirectory(sampleBots(60))
	if d.Len() != 60 {
		t.Fatalf("len = %d", d.Len())
	}
	if d.Pages() != 3 {
		t.Fatalf("pages = %d", d.Pages())
	}
	p1 := d.Page(1)
	if len(p1) != PageSize {
		t.Fatalf("page 1 size = %d", len(p1))
	}
	// Votes descending.
	if p1[0].Votes != 600 || p1[1].Votes > p1[0].Votes {
		t.Errorf("page 1 not vote-sorted: %d, %d", p1[0].Votes, p1[1].Votes)
	}
	last := d.Page(3)
	if len(last) != 60-2*PageSize {
		t.Errorf("last page size = %d", len(last))
	}
	if got := d.Page(4); got != nil {
		t.Errorf("past-the-end page = %v", got)
	}
	if got := d.Page(0); got != nil {
		t.Errorf("page 0 = %v", got)
	}
	if _, ok := d.ByID(1); !ok {
		t.Error("ByID miss")
	}
	if _, ok := d.ByID(999); ok {
		t.Error("ByID ghost hit")
	}
}

func TestDirectoryTieBreakDeterministic(t *testing.T) {
	bots := sampleBots(4)
	for _, b := range bots {
		b.Votes = 100
	}
	d1 := NewDirectory(bots)
	d2 := NewDirectory([]*Bot{bots[3], bots[2], bots[1], bots[0]})
	for i := range d1.All() {
		if d1.All()[i].ID != d2.All()[i].ID {
			t.Fatal("tie-break not deterministic across input orders")
		}
	}
}

func newServer(t *testing.T, bots []*Bot, cfg AntiScrape) *Server {
	t.Helper()
	srv, err := NewServer(NewDirectory(bots), cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestServerListAndDetailPages(t *testing.T) {
	srv := newServer(t, sampleBots(30), AntiScrape{})
	code, body := get(t, srv.BaseURL()+"/bots?page=1")
	if code != 200 || !strings.Contains(body, "bot-card") {
		t.Fatalf("list page: %d", code)
	}
	if !strings.Contains(body, "next-page") {
		t.Error("missing pagination link")
	}
	code, body = get(t, srv.BaseURL()+"/bots?page=2")
	if code != 200 || strings.Contains(body, "next-page") {
		t.Error("last page should have no next link")
	}
	code, body = get(t, srv.BaseURL()+"/bot/1")
	if code != 200 || !strings.Contains(body, "bot1") || !strings.Contains(body, "a class=\"invite\"") {
		t.Errorf("detail page: %d", code)
	}
	code, _ = get(t, srv.BaseURL()+"/bot/999")
	if code != 404 {
		t.Errorf("ghost bot status = %d", code)
	}
	code, _ = get(t, srv.BaseURL()+"/bot/notanumber")
	if code != 404 {
		t.Errorf("bad id status = %d", code)
	}
	if srv.Requests() == 0 {
		t.Error("request counter did not move")
	}
}

func TestServerConsentPage(t *testing.T) {
	bots := sampleBots(3)
	bots[0].Perms = permissions.Administrator | permissions.SendMessages
	srv := newServer(t, bots, AntiScrape{})
	code, body := get(t, fmt.Sprintf("%s/oauth/authorize?bot_id=1&permissions=%s",
		srv.BaseURL(), bots[0].Perms.Value()))
	if code != 200 {
		t.Fatalf("consent status = %d", code)
	}
	if !strings.Contains(body, `id="perm-value"`) || !strings.Contains(body, "administrator") {
		t.Errorf("consent body missing permission info")
	}
	code, _ = get(t, srv.BaseURL()+"/oauth/authorize?bot_id=zzz")
	if code != 400 {
		t.Errorf("bad bot_id status = %d", code)
	}
	code, _ = get(t, srv.BaseURL()+"/oauth/authorize?bot_id=777")
	if code != 404 {
		t.Errorf("unknown bot_id status = %d", code)
	}
}

func TestServerRemovedAndSlow(t *testing.T) {
	bots := sampleBots(3)
	bots[0].InviteHealth = InviteRemoved
	bots[1].InviteHealth = InviteSlow
	srv := newServer(t, bots, AntiScrape{SlowRedirectDelay: 50 * time.Millisecond})
	code, _ := get(t, srv.BaseURL()+"/oauth/authorize?bot_id=1")
	if code != 410 {
		t.Errorf("removed bot status = %d, want 410", code)
	}
	// Slow endpoint eventually redirects to consent.
	client := &http.Client{Timeout: 2 * time.Second}
	start := time.Now()
	resp, err := client.Get(srv.BaseURL() + "/oauth/slow/2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("slow redirect answered in %v", elapsed)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "perm-value") {
		t.Error("slow redirect did not land on consent page")
	}
	code, _ = get(t, srv.BaseURL()+"/oauth/slow/notanumber")
	if code != 404 {
		t.Errorf("bad slow id status = %d", code)
	}
}

func TestServerSitePages(t *testing.T) {
	bots := sampleBots(4)
	bots[1].HasPolicyLink = true // bot ID 2 has website (even)
	bots[1].PolicyText = "we collect things"
	bots[3].HasPolicyLink = true
	bots[3].PolicyDead = true
	srv := newServer(t, bots, AntiScrape{})

	code, body := get(t, srv.BaseURL()+"/site/2")
	if code != 200 || !strings.Contains(body, "privacy-link") {
		t.Errorf("site page: %d", code)
	}
	code, body = get(t, srv.BaseURL()+"/site/2/privacy")
	if code != 200 || !strings.Contains(body, "we collect things") {
		t.Errorf("policy page: %d", code)
	}
	code, _ = get(t, srv.BaseURL()+"/site/4/privacy")
	if code != 404 {
		t.Errorf("dead policy status = %d", code)
	}
	// Odd IDs have no website at all.
	code, _ = get(t, srv.BaseURL()+"/site/1")
	if code != 404 {
		t.Errorf("siteless bot status = %d", code)
	}
	code, _ = get(t, srv.BaseURL()+"/site/zzz")
	if code != 404 {
		t.Errorf("bad site id status = %d", code)
	}
}

func TestGuardRateLimitAndCaptcha(t *testing.T) {
	srv := newServer(t, sampleBots(5), AntiScrape{
		RequestsPerSecond: 5, Burst: 2, CaptchaEvery: 0,
	})
	// Burst of 2, then throttled.
	client := &http.Client{}
	codes := []int{}
	for i := 0; i < 4; i++ {
		req, _ := http.NewRequest("GET", srv.BaseURL()+"/bots", nil)
		req.Header.Set("X-Session", "ratelimit-test")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	saw429 := false
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			saw429 = true
		}
	}
	if !saw429 {
		t.Errorf("no 429 in %v", codes)
	}
}

func TestCaptchaChallengeAndSolve(t *testing.T) {
	srv := newServer(t, sampleBots(5), AntiScrape{CaptchaEvery: 1})
	client := &http.Client{}
	do := func(req *http.Request) (*http.Response, string) {
		req.Header.Set("X-Session", "captcha-test")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}
	// First request admitted but arms a challenge; second is blocked.
	req, _ := http.NewRequest("GET", srv.BaseURL()+"/bots", nil)
	resp, _ := do(req)
	if resp.StatusCode != 200 {
		t.Fatalf("first request status = %d", resp.StatusCode)
	}
	req, _ = http.NewRequest("GET", srv.BaseURL()+"/bots", nil)
	resp, body := do(req)
	if resp.StatusCode != 403 || !strings.Contains(body, "data-challenge-id") {
		t.Fatalf("second request should be challenged: %d", resp.StatusCode)
	}
	// Extract and solve.
	chID := extractAttr(body, "data-challenge-id")
	var a, b int
	if _, err := fmt.Sscanf(between(body, "what is ", "?"), "%d plus %d", &a, &b); err != nil {
		t.Fatalf("parse challenge: %v (%q)", err, body)
	}
	form := url.Values{"challenge_id": {chID}, "answer": {fmt.Sprint(a + b)}}
	req, _ = http.NewRequest("POST", srv.BaseURL()+"/captcha", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, body = do(req)
	if resp.StatusCode != 200 {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}
	pass := extractAttr(body, "data-pass")
	if pass == "" {
		t.Fatal("no pass token")
	}
	// Pass unlocks the next request.
	req, _ = http.NewRequest("GET", srv.BaseURL()+"/bots", nil)
	req.Header.Set("X-Captcha-Pass", pass)
	resp, _ = do(req)
	if resp.StatusCode != 200 {
		t.Errorf("pass-bearing request status = %d", resp.StatusCode)
	}
	// Wrong answers are rejected.
	form = url.Values{"challenge_id": {"chXXXXXX"}, "answer": {"1"}}
	req, _ = http.NewRequest("POST", srv.BaseURL()+"/captcha", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, _ = do(req)
	if resp.StatusCode != 403 {
		t.Errorf("bogus solve status = %d", resp.StatusCode)
	}
	// Non-numeric answers are a 400.
	form = url.Values{"challenge_id": {"x"}, "answer": {"banana"}}
	req, _ = http.NewRequest("POST", srv.BaseURL()+"/captcha", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, _ = do(req)
	if resp.StatusCode != 400 {
		t.Errorf("bad answer status = %d", resp.StatusCode)
	}
	// GET on /captcha is not allowed.
	req, _ = http.NewRequest("GET", srv.BaseURL()+"/captcha", nil)
	resp, _ = do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET captcha status = %d", resp.StatusCode)
	}
}

func TestPageByTag(t *testing.T) {
	bots := sampleBots(60)
	for i, b := range bots {
		if i%2 == 0 {
			b.Tags = []string{"gaming", "fun"}
		} else {
			b.Tags = []string{"music"}
		}
	}
	d := NewDirectory(bots)
	p1, more := d.PageByTag("gaming", 1)
	if len(p1) != PageSize || !more {
		t.Fatalf("page 1 = %d bots, more=%v", len(p1), more)
	}
	p2, more := d.PageByTag("gaming", 2)
	if len(p2) != 30-PageSize || more {
		t.Errorf("page 2 = %d bots, more=%v", len(p2), more)
	}
	if got, _ := d.PageByTag("gaming", 3); got != nil {
		t.Errorf("past-the-end tag page = %v", got)
	}
	if got, _ := d.PageByTag("anime", 1); got != nil {
		t.Errorf("unknown tag page = %v", got)
	}
	if got, _ := d.PageByTag("music", 0); got != nil {
		t.Errorf("page 0 = %v", got)
	}
	// Vote ordering preserved within a tag.
	for i := 1; i < len(p1); i++ {
		if p1[i-1].Votes < p1[i].Votes {
			t.Fatal("tag page not vote-ordered")
		}
	}
}

func TestServerTagFilteredListing(t *testing.T) {
	bots := sampleBots(40)
	for i, b := range bots {
		if i < 10 {
			b.Tags = []string{"meme"}
		}
	}
	srv := newServer(t, bots, AntiScrape{})
	code, body := get(t, srv.BaseURL()+"/bots?tag=meme")
	if code != 200 {
		t.Fatal(code)
	}
	if n := strings.Count(body, "bot-card"); n != 10 {
		t.Errorf("meme cards = %d", n)
	}
	if strings.Contains(body, "next-page") {
		t.Error("single tag page should have no pagination link")
	}
	code, body = get(t, srv.BaseURL()+"/bots?tag=ghost-tag")
	if code != 200 || strings.Contains(body, "bot-card") {
		t.Errorf("unknown tag should list nothing: %d", code)
	}
}

func TestInviteHealthStrings(t *testing.T) {
	for h, want := range map[InviteHealth]string{
		InviteOK: "ok", InviteBroken: "broken", InviteRemoved: "removed",
		InviteSlow: "slow-redirect", InviteHealth(99): "unknown",
	} {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), want)
		}
	}
}

func TestFlakyFirstRenderOnly(t *testing.T) {
	srv := newServer(t, sampleBots(40), AntiScrape{FlakyEvery: 1}) // every path flaky once
	_, first := get(t, srv.BaseURL()+"/bot/1")
	_, second := get(t, srv.BaseURL()+"/bot/1")
	if strings.Contains(first, `class="invite"`) {
		t.Error("first render should omit the invite block with FlakyEvery=1")
	}
	if !strings.Contains(second, `class="invite"`) {
		t.Error("second render must include the invite block")
	}
}

func extractAttr(body, attr string) string {
	return between(body, attr+`="`, `"`)
}

func between(s, a, b string) string {
	i := strings.Index(s, a)
	if i < 0 {
		return ""
	}
	s = s[i+len(a):]
	j := strings.Index(s, b)
	if j < 0 {
		return ""
	}
	return s[:j]
}
